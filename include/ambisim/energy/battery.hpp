// Battery model with rate derating (Peukert-style), self-discharge, and
// recharge clamping.  The milliWatt "personal" node of the keynote runs from
// a battery; the microWatt "autonomous" node uses a small cell or storage
// capacitor buffered by a harvester.
#pragma once

#include <string>

#include "ambisim/sim/units.hpp"

namespace ambisim::energy {

namespace u = ambisim::units;

class Battery {
 public:
  struct Spec {
    std::string name;
    u::Voltage voltage;        ///< nominal terminal voltage
    u::Charge capacity;        ///< rated charge
    double peukert = 1.0;      ///< rate-derating exponent (>= 1)
    u::Current rated_current;  ///< current at which capacity is rated
    u::Power self_discharge;   ///< standby loss (idle shelf drain)
  };

  /// 3 V lithium coin cell, 225 mAh: the classic microWatt-node reserve.
  static Spec coin_cell_cr2032();
  /// 1.5 V alkaline AA, 2850 mAh.
  static Spec alkaline_aa();
  /// 3.7 V Li-ion handheld pack, 1000 mAh: the milliWatt-node supply.
  static Spec li_ion_1000mAh();
  /// Thin-film storage for autonomous nodes, 3 V, 1 mAh.
  static Spec thin_film_1mAh();
  /// Storage capacitor for battery-free backscatter tags: the linear V*Q
  /// energy model with Q = C*V (stored energy C*V^2; the constant-voltage
  /// approximation of the 1/2*C*V^2 curve, consistent with the rest of the
  /// Battery accounting).  No rate derating, negligible leakage.
  static Spec storage_capacitor(u::Capacitance c, u::Voltage v);

  explicit Battery(Spec spec);

  [[nodiscard]] const Spec& spec() const { return spec_; }
  /// Nominal stored energy when full: V * Q.
  [[nodiscard]] u::Energy capacity() const;
  [[nodiscard]] u::Energy remaining() const { return remaining_; }
  [[nodiscard]] double state_of_charge() const;
  [[nodiscard]] bool depleted() const { return remaining_ <= u::Energy(0.0); }

  /// Draw power `p` for `dt`.  High-rate draws are derated: the charge
  /// removed is multiplied by (I/I_rated)^(peukert-1) when I > I_rated.
  /// Returns the energy actually *delivered to the load* (less than p*dt if
  /// the battery empties mid-interval).
  u::Energy draw(u::Power p, u::Time dt);

  /// Deposit harvested energy; clamped at full capacity.  Returns the energy
  /// actually stored.
  u::Energy recharge(u::Energy e);

  /// Force the state of charge (test/setup helper; no derating applied).
  void set_state_of_charge(double soc);

  /// Brown-out hysteresis: the supply rail collapses when the state of
  /// charge falls to `cutoff_soc` and only comes back once recharge lifts
  /// it to `recovery_soc` (>= cutoff).  The gap is the hysteresis band that
  /// keeps a node oscillating around the cutoff from flapping up and down.
  /// Until configured the latch is inert and brown_out() is always false.
  void configure_brownout(double cutoff_soc, double recovery_soc);
  /// True while the rail is collapsed (entered at <= cutoff, left at
  /// >= recovery).  Every draw/recharge/idle/set_state_of_charge updates it.
  [[nodiscard]] bool brown_out() const { return brown_out_; }
  [[nodiscard]] double brownout_cutoff() const { return cutoff_soc_; }
  [[nodiscard]] double brownout_recovery() const { return recovery_soc_; }

  /// Apply self-discharge over an idle interval.
  void idle(u::Time dt);

  /// Analytic lifetime under a constant load `p` (includes derating and
  /// self-discharge, starting from the current state of charge).
  [[nodiscard]] u::Time lifetime_at(u::Power p) const;

 private:
  /// Multiplier >= 1 applied to the internal drain for a given load power.
  [[nodiscard]] double derating(u::Power p) const;
  /// Re-evaluate the brown-out latch against the current state of charge.
  void update_brownout();

  Spec spec_;
  u::Energy remaining_;
  bool brownout_enabled_ = false;
  double cutoff_soc_ = 0.0;
  double recovery_soc_ = 0.0;
  bool brown_out_ = false;
};

}  // namespace ambisim::energy
