// Storage-buffer simulation across harvest cycles.
//
// An outdoor-harvesting microWatt node must ride through the night on its
// buffer; an indoor one through dark weekends.  This module simulates the
// buffer's state of charge against a harvester and a constant load, and
// sizes the smallest buffer that survives — the storage half of the
// autonomous node's energy-neutral design (extends reproduction F3).
#pragma once

#include <memory>

#include "ambisim/energy/battery.hpp"
#include "ambisim/energy/harvester.hpp"
#include "ambisim/sim/simulator.hpp"

namespace ambisim::energy {

struct BufferSimConfig {
  std::shared_ptr<const Harvester> harvester;
  Battery::Spec buffer = Battery::thin_film_1mAh();
  u::Power load{10e-6};
  u::Time duration{86400.0 * 7};
  u::Time step{60.0};
  double initial_soc = 1.0;
};

struct BufferSimResult {
  bool survived = true;            ///< never fully depleted
  u::Time first_depletion{0.0};    ///< 0 if survived
  double min_soc = 1.0;
  double final_soc = 1.0;
  /// True when the last full cycle ends at least as charged as it began
  /// (the buffer has reached a sustainable steady state).
  bool sustainable = false;
  sim::Trace soc_trace{"state-of-charge"};
  u::Energy harvested{0.0};
  u::Energy consumed{0.0};
};

/// Fixed-step simulation of the buffer's state of charge.
BufferSimResult simulate_energy_buffer(const BufferSimConfig& cfg);

/// Charge-then-burst duty cycle of a battery-free (backscatter) tag: the
/// storage capacitor charges from the harvester against a sleep draw; when
/// the state of charge reaches `wake_soc` the tag transmits one burst —
/// `burst_power` for `burst_duration` — then returns to charging.  A burst
/// that empties the capacitor mid-way is aborted (counted, not delivered);
/// a harvester that never beats the sleep draw starves the tag forever.
struct ChargeBurstConfig {
  std::shared_ptr<const Harvester> harvester;
  /// Storage element; Battery::storage_capacitor for the battery-free tag.
  Battery::Spec buffer = Battery::storage_capacitor(u::Capacitance(47e-6),
                                                    u::Voltage(2.4));
  u::Power sleep_load{1e-6};     ///< retention + timer draw while charging
  u::Power burst_power{2e-3};    ///< active draw during the burst
  u::Time burst_duration{0.05};
  double wake_soc = 0.9;         ///< burst starts when SoC reaches this
  u::Time duration{600.0};
  u::Time step{0.1};             ///< charge-phase integration step
  double initial_soc = 0.0;
};

struct ChargeBurstResult {
  long long bursts_completed = 0;
  long long bursts_aborted = 0;    ///< capacitor hit empty mid-burst
  /// Mean time from entering the charge phase to the wake threshold, over
  /// every completed charge cycle (0 when the tag never woke).
  double mean_charge_latency_s = 0.0;
  u::Time first_burst{0.0};        ///< 0 when the tag never woke
  /// True when the tag never reached wake_soc (zero-harvest starvation or
  /// a harvester weaker than the sleep draw).
  bool starved = false;
  double final_soc = 0.0;
  u::Energy harvested{0.0};
  u::Energy consumed{0.0};
};

/// Fixed-step simulation of the charge-then-burst cycle.
ChargeBurstResult simulate_charge_burst(const ChargeBurstConfig& cfg);

/// Smallest buffer capacity (joules) that survives `cfg.duration` with the
/// given harvester/load, found by bisection on the capacity of
/// `cfg.buffer`.  Throws std::domain_error if even `max_scale` times the
/// base buffer dies (the load is simply unsustainable).
u::Energy minimum_buffer_energy(const BufferSimConfig& cfg,
                                double max_scale = 1e4,
                                int iterations = 40);

}  // namespace ambisim::energy
