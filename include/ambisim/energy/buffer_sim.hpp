// Storage-buffer simulation across harvest cycles.
//
// An outdoor-harvesting microWatt node must ride through the night on its
// buffer; an indoor one through dark weekends.  This module simulates the
// buffer's state of charge against a harvester and a constant load, and
// sizes the smallest buffer that survives — the storage half of the
// autonomous node's energy-neutral design (extends reproduction F3).
#pragma once

#include <memory>

#include "ambisim/energy/battery.hpp"
#include "ambisim/energy/harvester.hpp"
#include "ambisim/sim/simulator.hpp"

namespace ambisim::energy {

struct BufferSimConfig {
  std::shared_ptr<const Harvester> harvester;
  Battery::Spec buffer = Battery::thin_film_1mAh();
  u::Power load{10e-6};
  u::Time duration{86400.0 * 7};
  u::Time step{60.0};
  double initial_soc = 1.0;
};

struct BufferSimResult {
  bool survived = true;            ///< never fully depleted
  u::Time first_depletion{0.0};    ///< 0 if survived
  double min_soc = 1.0;
  double final_soc = 1.0;
  /// True when the last full cycle ends at least as charged as it began
  /// (the buffer has reached a sustainable steady state).
  bool sustainable = false;
  sim::Trace soc_trace{"state-of-charge"};
  u::Energy harvested{0.0};
  u::Energy consumed{0.0};
};

/// Fixed-step simulation of the buffer's state of charge.
BufferSimResult simulate_energy_buffer(const BufferSimConfig& cfg);

/// Smallest buffer capacity (joules) that survives `cfg.duration` with the
/// given harvester/load, found by bisection on the capacity of
/// `cfg.buffer`.  Throws std::domain_error if even `max_scale` times the
/// base buffer dies (the load is simply unsustainable).
u::Energy minimum_buffer_energy(const BufferSimConfig& cfg,
                                double max_scale = 1e4,
                                int iterations = 40);

}  // namespace ambisim::energy
