// Fuzzer contracts: generation is a pure function of (seed, index) with a
// committed byte-level golden, every generated scenario satisfies the
// engine invariants end to end, and shrinking converges on a minimal spec
// that still fails the caller's predicate.
#include "ambisim/scen/fuzzer.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "ambisim/scen/build.hpp"
#include "ambisim/scen/loader.hpp"

using namespace ambisim;

namespace {

TEST(ScenFuzzer, GenerationIsPure) {
  scen::Fuzzer a, b;
  for (const std::uint64_t i : {0ull, 1ull, 17ull, 999ull})
    EXPECT_EQ(to_json(a.generate(i)), to_json(b.generate(i))) << i;
  // Out-of-order calls see the same specs as in-order ones.
  const std::string late_first = to_json(a.generate(5));
  (void)a.generate(0);
  EXPECT_EQ(to_json(a.generate(5)), late_first);
}

TEST(ScenFuzzer, GenerationChecksumGolden) {
  // Committed golden: 50 specs from root seed 1.  A change here means the
  // generator's byte output moved — deliberate generator changes must
  // update this constant and say so in the commit message.  (Last moved
  // when the backscatter arm was added; the pre-backscatter stream is
  // still pinned by BackscatterOffReproducesLegacyStream below.)
  scen::Fuzzer fuzzer;
  EXPECT_EQ(fuzzer.generation_checksum(50), 0x3942c48c07183ca4ull);
}

TEST(ScenFuzzer, DifferentRootSeedsDiverge) {
  scen::FuzzConfig c2;
  c2.root_seed = 2;
  EXPECT_NE(scen::Fuzzer().generation_checksum(10),
            scen::Fuzzer(c2).generation_checksum(10));
}

TEST(ScenFuzzer, GeneratedSpecsAreLoaderValid) {
  scen::Fuzzer fuzzer;
  for (std::uint64_t i = 0; i < 100; ++i) {
    const auto spec = fuzzer.generate(i);
    const auto r = scen::Loader{}.load_text(to_json(spec));
    ASSERT_TRUE(r.ok()) << "spec " << i << ":\n"
                        << r.format_diagnostics() << to_json(spec);
  }
}

// Tier-1 smoke: 50 seed-derived scenarios end to end, every invariant
// holding, and the campaign checksum matching pure generation.
TEST(ScenFuzzer, FiftyScenarioCampaignHoldsInvariants) {
  scen::Fuzzer fuzzer;
  const auto result = fuzzer.run(50);
  EXPECT_EQ(result.executed, 50u);
  for (const auto& [index, reason] : result.failed)
    ADD_FAILURE() << "scenario " << index << ": " << reason;
  EXPECT_EQ(result.failures, 0u);
  EXPECT_EQ(result.spec_checksum, fuzzer.generation_checksum(50));
}

TEST(ScenFuzzer, CheckFlagsPoolDependenceViaBrokenSpec) {
  // An Ami-composition spec cannot come out of generate(); check() must
  // still accept hand-made specs, so feed it one with an impossible
  // tautology replaced — the assertion invariant has to trip.
  scen::Fuzzer fuzzer;
  auto spec = fuzzer.generate(0);
  spec.assertions.clear();
  spec.assertions.push_back({"delivered_fraction", ">=", 1.1, -1, ""});
  const auto v = fuzzer.check(spec);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.failure.find("assertion failed"), std::string::npos)
      << v.failure;
}

TEST(ScenFuzzer, ShrinkProducesMinimalStillFailingSpec) {
  scen::Fuzzer fuzzer;
  // Find a generated spec with faults and several knobs to strip.
  scen::ScenarioSpec seedspec;
  bool found = false;
  for (std::uint64_t i = 0; i < 50 && !found; ++i) {
    seedspec = fuzzer.generate(i);
    found = seedspec.faults.has_value() && seedspec.run.replications > 1;
  }
  ASSERT_TRUE(found);
  seedspec.assertions.push_back({"delivered_fraction", ">=", 1.1, -1, ""});

  const auto still_fails = [](const scen::ScenarioSpec& s) {
    return !scen::run_scenario(s).assertions_passed;
  };
  ASSERT_TRUE(still_fails(seedspec));
  const auto minimal = scen::Fuzzer::shrink(seedspec, still_fails);

  // The impossible assertion keeps failing on the shrunken spec...
  EXPECT_TRUE(still_fails(minimal));
  // ...and everything droppable is gone.
  EXPECT_EQ(minimal.run.replications, 1);
  EXPECT_FALSE(minimal.faults.has_value());
  EXPECT_EQ(minimal.fleet.size(), 1u);
  EXPECT_EQ(minimal.fleet[0].count, 1);
  EXPECT_LE(minimal.run.duration_s, 60.0);
  ASSERT_EQ(minimal.assertions.size(), 1u);
  EXPECT_EQ(minimal.assertions[0].check, "delivered_fraction");
  // Repro discipline: the minimal spec is still loader-valid.
  EXPECT_TRUE(scen::Loader{}.load_text(to_json(minimal)).ok());
}

TEST(ScenFuzzer, ShrinkKeepsSpecWhenNothingReduces) {
  scen::Fuzzer fuzzer;
  auto spec = fuzzer.generate(1);
  // A predicate that rejects every edit: shrink must return the input.
  const std::string original = to_json(spec);
  const auto never = [](const scen::ScenarioSpec&) { return false; };
  // still_fails(spec) is not required to hold for the *input*; shrink only
  // keeps edits the predicate blesses, so nothing changes here.
  EXPECT_EQ(to_json(scen::Fuzzer::shrink(spec, never)), original);
}

TEST(ScenFuzzer, WriteReproRoundTrips) {
  scen::Fuzzer fuzzer;
  const auto spec = fuzzer.generate(3);
  const std::string path =
      testing::TempDir() + "/ambisim_repro_test.scen.json";
  ASSERT_TRUE(scen::Fuzzer::write_repro(spec, path));
  const auto r = scen::Loader{}.load_file(path);
  ASSERT_TRUE(r.ok()) << r.format_diagnostics();
  EXPECT_EQ(to_json(*r.spec), to_json(spec));
  std::remove(path.c_str());
  EXPECT_FALSE(
      scen::Fuzzer::write_repro(spec, "/nonexistent/dir/repro.json"));
}

}  // namespace

TEST(ScenFuzzer, GeneratorEmitsBackscatterFleets) {
  // The aiot arm fires ~15% of the time; 100 specs make a miss
  // astronomically unlikely, and every hit must be a valid aiot spec.
  scen::Fuzzer fuzzer;
  int aiot = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    const auto spec = fuzzer.generate(i);
    if (spec.engine() != scen::Engine::Aiot) continue;
    ++aiot;
    EXPECT_GE(spec.tag_count(), fuzzer.config().min_sensors) << i;
    EXPECT_FALSE(spec.faults.has_value()) << i;
  }
  EXPECT_GT(aiot, 0);
  EXPECT_LT(aiot, 50);  // it stays an arm, not the main line
}

TEST(ScenFuzzer, BackscatterOffReproducesLegacyStream) {
  // with_backscatter=false consumes no generation draw, so the stream —
  // and therefore the checksum — matches the pre-backscatter generator's
  // committed golden exactly.
  scen::FuzzConfig legacy;
  legacy.with_backscatter = false;
  EXPECT_EQ(scen::Fuzzer(legacy).generation_checksum(50),
            0x991e5d9a508401a3ull);
}
