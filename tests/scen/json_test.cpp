// The scenario JSON dialect: strict JSON + comments + trailing commas,
// with everything a spec must never smuggle through rejected at a
// position the loader can point at.
#include "ambisim/scen/json.hpp"

#include <gtest/gtest.h>

#include <string>

namespace json = ambisim::scen::json;

namespace {

json::ParseError capture(const std::string& text) {
  try {
    (void)json::parse(text);
  } catch (const json::ParseError& e) {
    return e;
  }
  ADD_FAILURE() << "expected ParseError for: " << text;
  return json::ParseError("unreached", 0, 0);
}

TEST(ScenJson, ParsesScalarsAndStructure) {
  const auto v = json::parse(
      R"({"a": 1.5, "b": [true, false, null], "c": {"d": "x"}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.find("a")->as_number(), 1.5);
  ASSERT_TRUE(v.find("b")->is_array());
  EXPECT_EQ(v.find("b")->items().size(), 3u);
  EXPECT_TRUE(v.find("b")->items()[0].as_bool());
  EXPECT_TRUE(v.find("b")->items()[2].is_null());
  EXPECT_EQ(v.find("c")->find("d")->as_string(), "x");
}

TEST(ScenJson, AllowsCommentsAndTrailingCommas) {
  const auto v = json::parse(R"(
    // line comment
    {
      "a": 1, /* block
                 comment */
      "b": [1, 2, 3,],
    }
  )");
  EXPECT_DOUBLE_EQ(v.find("a")->as_number(), 1.0);
  EXPECT_EQ(v.find("b")->items().size(), 3u);
}

TEST(ScenJson, TracksLineAndColumn) {
  const auto v = json::parse("{\n  \"a\": 7\n}");
  const json::Value* a = v.find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->line(), 2);
  EXPECT_EQ(a->col(), 8);
}

TEST(ScenJson, RejectsDuplicateKeys) {
  const auto e = capture(R"({"a": 1, "a": 2})");
  EXPECT_NE(std::string(e.what()).find("duplicate key"), std::string::npos);
  EXPECT_EQ(e.line(), 1);
}

TEST(ScenJson, RejectsTrailingGarbage) {
  const auto e = capture("{\"a\": 1} {\"b\": 2}");
  EXPECT_NE(std::string(e.what()).find("trailing"), std::string::npos);
}

TEST(ScenJson, RejectsDeepNesting) {
  std::string deep(json::kMaxNestingDepth + 1, '[');
  const auto e = capture(deep);
  EXPECT_NE(std::string(e.what()).find("nest"), std::string::npos);
  // Exactly at the cap is still fine.
  std::string ok;
  for (int i = 0; i < json::kMaxNestingDepth; ++i) ok += '[';
  for (int i = 0; i < json::kMaxNestingDepth; ++i) ok += ']';
  EXPECT_NO_THROW((void)json::parse(ok));
}

TEST(ScenJson, RejectsNaNAndInfinityLiterals) {
  EXPECT_THROW((void)json::parse("NaN"), json::ParseError);
  EXPECT_THROW((void)json::parse("Infinity"), json::ParseError);
  EXPECT_THROW((void)json::parse("-Infinity"), json::ParseError);
  EXPECT_THROW((void)json::parse("{\"a\": nan}"), json::ParseError);
}

TEST(ScenJson, RejectsNumericOverflowToInfinity) {
  const auto e = capture("{\"a\": 1e999}");
  EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos);
}

TEST(ScenJson, RejectsLeadingZerosAndBareSigns) {
  EXPECT_THROW((void)json::parse("007"), json::ParseError);
  EXPECT_THROW((void)json::parse("+1"), json::ParseError);
  EXPECT_THROW((void)json::parse("-"), json::ParseError);
  EXPECT_THROW((void)json::parse(".5"), json::ParseError);
  EXPECT_NO_THROW((void)json::parse("0.5"));
  EXPECT_NO_THROW((void)json::parse("-0.5e-3"));
}

TEST(ScenJson, RejectsControlCharactersInStrings) {
  EXPECT_THROW((void)json::parse("\"a\nb\""), json::ParseError);
  EXPECT_THROW((void)json::parse("\"a\tb\""), json::ParseError);
  EXPECT_NO_THROW((void)json::parse(R"("a\nb\tc")"));
}

TEST(ScenJson, DecodesEscapesAndSurrogatePairs) {
  EXPECT_EQ(json::parse(R"("Aé")").as_string(), "A\xc3\xa9");
  // U+1F600 as a surrogate pair -> 4-byte UTF-8.
  EXPECT_EQ(json::parse(R"("😀")").as_string(),
            "\xf0\x9f\x98\x80");
  // A lone surrogate is not a code point.
  EXPECT_THROW((void)json::parse(R"("\ud83d")"), json::ParseError);
}

TEST(ScenJson, RejectsTruncatedDocuments) {
  EXPECT_THROW((void)json::parse(""), json::ParseError);
  EXPECT_THROW((void)json::parse("{\"a\": "), json::ParseError);
  EXPECT_THROW((void)json::parse("[1, 2"), json::ParseError);
  EXPECT_THROW((void)json::parse("\"abc"), json::ParseError);
  EXPECT_THROW((void)json::parse("/* unterminated"), json::ParseError);
}

TEST(ScenJson, DumpParsesBackIdentically) {
  const char* text =
      R"({"name": "x", "values": [1, 2.5, 1e-9], "flag": true, "none": null})";
  const auto v = json::parse(text);
  const std::string once = json::dump(v);
  const std::string twice = json::dump(json::parse(once));
  EXPECT_EQ(once, twice);
}

TEST(ScenJson, FormatNumberIsShortestRoundTrip) {
  EXPECT_EQ(json::format_number(1.0), "1");
  EXPECT_EQ(json::format_number(0.5), "0.5");
  EXPECT_EQ(json::format_number(-3.0), "-3");
  EXPECT_EQ(json::format_number(0.1), "0.1");
}

TEST(ScenJson, BuildersEnforceObjectDiscipline) {
  auto obj = json::Value::object();
  obj.set("a", json::Value::number(1.0));
  EXPECT_THROW(obj.set("a", json::Value::number(2.0)), std::runtime_error);
  EXPECT_THROW(obj.push(json::Value::null()), std::runtime_error);
  auto arr = json::Value::array();
  arr.push(json::Value::boolean(true));
  EXPECT_THROW(arr.set("k", json::Value::null()), std::runtime_error);
}

}  // namespace
