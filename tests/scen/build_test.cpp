// Lowering and execution: a spec produces the exact config a hand-written
// example would, replication batches are bit-identical at any pool size,
// and assertions evaluate against the aggregate.
#include "ambisim/scen/build.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ambisim/core/scenario.hpp"
#include "ambisim/net/packet_sim.hpp"
#include "ambisim/obs/obs.hpp"
#include "ambisim/scen/loader.hpp"

using namespace ambisim;
namespace u = ambisim::units;

namespace {

scen::ScenarioSpec load(const char* text) {
  const auto r = scen::Loader{}.load_text(text);
  EXPECT_TRUE(r.ok()) << r.format_diagnostics();
  return *r.spec;
}

constexpr const char* kNetSpec = R"({
  "name": "net",
  "fleet": [ { "class": "microwatt", "count": 24 } ],
  "topology": { "kind": "random", "field_side_m": 40, "radio_range_m": 15 },
  "workload": {
    "report_period_s": 10,
    "packet_bits": 512,
    "mac": { "wake_interval_s": 0.5, "listen_window_s": 0.005 },
  },
  "run": { "duration_s": 1800, "seed": 42 },
})";

TEST(ScenBuild, NetSpecReproducesHandWrittenRun) {
  const auto spec = load(kNetSpec);

  // The config an engineer would write by hand for the same experiment.
  net::PacketSimConfig hand;
  hand.node_count = 25;  // 24 sensors + sink
  hand.field_side = u::Length(40.0);
  hand.radio_range = u::Length(15.0);
  hand.report_period = u::Time(10.0);
  hand.packet_bits = u::Information(512.0);
  hand.mac = net::DutyCycledMac{u::Time(0.5), u::Time(0.005)};
  hand.duration = u::Time(1800.0);
  hand.seed = 42;
  const auto direct = net::simulate_packets(hand);

  const auto summary = scen::run_scenario(spec);
  ASSERT_EQ(summary.replications.size(), 1u);
  const auto& rep = summary.replications[0];
  EXPECT_EQ(rep.generated, direct.generated);
  EXPECT_EQ(rep.delivered, direct.delivered);
  EXPECT_DOUBLE_EQ(rep.mean_hops, direct.mean_hops);
  EXPECT_DOUBLE_EQ(rep.latency_p95_s,
                   direct.end_to_end_latency.percentile(95.0));
}

TEST(ScenBuild, AmiSpecReproducesHandWrittenRun) {
  const auto spec = load(R"({
  "fleet": [
    { "class": "microwatt", "count": 12 },
    { "class": "milliwatt", "count": 1 },
    { "class": "watt", "count": 1 },
  ],
  "workload": { "events_per_hour": 20 },
  "run": { "duration_s": 86400, "seed": 7 },
})");

  core::AmiScenarioConfig hand;
  hand.sensor_count = 12;
  hand.events_per_hour = 20.0;
  const auto direct = core::run_ami_scenario(hand);

  const auto summary = scen::run_scenario(spec);
  ASSERT_EQ(summary.replications.size(), 1u);
  const auto& rep = summary.replications[0];
  EXPECT_EQ(rep.events, direct.events);
  EXPECT_EQ(rep.responses, direct.responses_rendered);
  EXPECT_DOUBLE_EQ(rep.personal_battery_days, direct.personal_battery_days);
  EXPECT_DOUBLE_EQ(rep.system_power_w, direct.system_power.value());
}

TEST(ScenBuild, BuildRejectsEngineMismatch) {
  const auto net_spec = load(kNetSpec);
  EXPECT_THROW((void)scen::build_ami_config(net_spec),
               std::invalid_argument);
  const auto ami_spec = load(R"({
  "fleet": [
    { "class": "microwatt", "count": 2 },
    { "class": "milliwatt", "count": 1 },
    { "class": "watt", "count": 1 },
  ],
})");
  EXPECT_THROW((void)scen::build_packet_config(ami_spec),
               std::invalid_argument);
}

TEST(ScenBuild, ChecksumIsPoolInvariant) {
  auto spec = load(kNetSpec);
  spec.run.replications = 6;
  std::uint64_t first = 0;
  for (const int pool : {1, 2, 8}) {
    scen::RunOverrides o;
    o.pool = pool;
    const auto s = scen::run_scenario(spec, o);
    if (pool == 1)
      first = s.checksum;
    else
      EXPECT_EQ(s.checksum, first) << "pool " << pool;
  }
  EXPECT_NE(first, 0u);
}

TEST(ScenBuild, RerunIsBitIdentical) {
  const auto spec = load(kNetSpec);
  const auto a = scen::run_scenario(spec);
  const auto b = scen::run_scenario(spec);
  EXPECT_EQ(a.checksum, b.checksum);
}

TEST(ScenBuild, OverridesReplaceRunStanza) {
  const auto spec = load(kNetSpec);
  scen::RunOverrides o;
  o.replications = 3;
  const auto s = scen::run_scenario(spec, o);
  EXPECT_EQ(s.replications.size(), 3u);
}

TEST(ScenBuild, PinnedTopologySeedDecouplesPlacementFromRunSeed) {
  auto pinned = load(R"({
  "fleet": [ { "class": "microwatt", "count": 12 } ],
  "topology": { "kind": "random", "field_side_m": 30, "seed": 99 },
  "run": { "duration_s": 600, "seed": 1 },
})");
  const auto cfg = scen::build_packet_config(pinned);
  ASSERT_TRUE(cfg.placement.has_value());
  EXPECT_EQ(cfg.placement->size(), 13);
  // Same layout regardless of the run seed.
  pinned.run.seed = 2;
  const auto cfg2 = scen::build_packet_config(pinned);
  ASSERT_TRUE(cfg2.placement.has_value());
  EXPECT_EQ(cfg.placement->position(3).x, cfg2.placement->position(3).x);
}

TEST(ScenBuild, GridAndStarTopologiesLowerToPlacements) {
  auto spec = load(R"({
  "fleet": [ { "class": "microwatt", "count": 8 } ],
  "topology": { "kind": "grid", "pitch_m": 8 },
  "run": { "duration_s": 600 },
})");
  const auto grid = scen::build_packet_config(spec);
  ASSERT_TRUE(grid.placement.has_value());
  EXPECT_EQ(grid.placement->size(), 9);

  spec.topology.kind = scen::TopologyKind::Star;
  const auto star = scen::build_packet_config(spec);
  ASSERT_TRUE(star.placement.has_value());
  // Star: every sensor one radius from the hub at node 0.
  const auto hub = star.placement->position(0);
  const auto p = star.placement->position(4);
  const double dx = p.x - hub.x;
  const double dy = p.y - hub.y;
  EXPECT_NEAR(std::sqrt(dx * dx + dy * dy), 12.0, 1e-9);
}

TEST(ScenBuild, EnergyCoupledSpecReportsFinalSoc) {
  const auto spec = load(R"({
  "fleet": [ { "class": "microwatt", "count": 10,
               "battery": { "kind": "thin_film_1mAh" },
               "harvester": { "area_cm2": 2.0 } } ],
  "run": { "duration_s": 3600, "seed": 3 },
})");
  const auto s = scen::run_scenario(spec);
  ASSERT_EQ(s.replications.size(), 1u);
  const auto& rep = s.replications[0];
  ASSERT_EQ(rep.final_soc.size(), 11u);
  EXPECT_DOUBLE_EQ(rep.final_soc[0], -1.0);  // immune, batteryless sink
  EXPECT_GE(rep.mean_final_soc, 0.0);
  EXPECT_LE(rep.mean_final_soc, 1.0);
  EXPECT_LE(rep.min_final_soc, rep.mean_final_soc);
}

TEST(ScenBuild, AssertionsEvaluateAgainstAggregate) {
  auto spec = load(kNetSpec);
  spec.assertions.push_back({"delivered_fraction", ">=", 0.5, -1, ""});
  spec.assertions.push_back({"delivered_fraction", ">=", 1.1, -1, ""});
  const auto s = scen::run_scenario(spec);
  ASSERT_EQ(s.assertions.size(), 2u);
  EXPECT_TRUE(s.assertions[0].passed);
  EXPECT_FALSE(s.assertions[1].passed);
  EXPECT_FALSE(s.assertions_passed);
  EXPECT_DOUBLE_EQ(s.assertions[0].observed, s.assertions[1].observed);
}

TEST(ScenBuild, PerNodeFinalSocAssertionReadsReplicationZero) {
  const auto spec = load(R"({
  "fleet": [ { "class": "microwatt", "count": 6,
               "battery": { "kind": "coin_cell_cr2032" } } ],
  "run": { "duration_s": 1200, "seed": 5, "replications": 2 },
  "assertions": [ { "check": "final_soc", "node": 2, "op": ">",
                    "value": 0.0 } ],
})");
  const auto s = scen::run_scenario(spec);
  ASSERT_EQ(s.assertions.size(), 1u);
  EXPECT_DOUBLE_EQ(s.assertions[0].observed,
                   s.replications.front().final_soc[2]);
}

#if AMBISIM_OBS_COMPILED
TEST(ScenBuild, ObsCounterAssertionArmsProbesAndReadsMetric) {
  const bool was_enabled = obs::enabled();
  auto spec = load(kNetSpec);
  spec.assertions.push_back(
      {"obs_counter", ">", 0.0, -1, "net.packets_generated"});
  const auto s = scen::run_scenario(spec);
  ASSERT_EQ(s.assertions.size(), 1u);
  EXPECT_TRUE(s.assertions[0].passed) << "observed "
                                      << s.assertions[0].observed;
  EXPECT_DOUBLE_EQ(s.assertions[0].observed,
                   static_cast<double>(s.replications[0].generated));
  EXPECT_EQ(obs::enabled(), was_enabled);
}
#endif

}  // namespace

// --- aiot engine lowering ---

namespace {

constexpr const char* kAiotSpec = R"({
  "name": "aiot",
  "fleet": [
    { "group": "tags",    "class": "backscatter", "count": 12 },
    { "group": "gateway", "class": "watt",        "count": 1 },
  ],
  "topology": { "kind": "random", "field_side_m": 25 },
  "workload": {
    "report_period_s": 60,
    "packet_bits": 256,
    "gateway_tx_w": 2.0,
    "tag_loss_db": 15,
  },
  "run": { "duration_s": 1200, "seed": 9 },
})";

}  // namespace

TEST(ScenBuild, AiotSpecReproducesHandWrittenRun) {
  const auto spec = load(kAiotSpec);

  aiot::WptSimConfig hand;
  hand.tag_count = 12;
  hand.field_side = u::Length(25.0);
  hand.gateway_tx_w = 2.0;
  hand.tag_loss_db = 15.0;
  hand.report_period_s = 60.0;
  hand.packet_bits = 256.0;
  hand.duration_s = 1200.0;
  hand.seed = 9;
  const auto direct = aiot::simulate_wpt(hand);

  const auto summary = scen::run_scenario(spec);
  ASSERT_EQ(summary.replications.size(), 1u);
  const auto& rep = summary.replications[0];
  EXPECT_DOUBLE_EQ(rep.delivered_fraction, direct.delivered_fraction);
  EXPECT_DOUBLE_EQ(rep.goodput_fraction, direct.coverage_fraction);
  EXPECT_EQ(rep.generated, direct.offered);
  EXPECT_EQ(rep.delivered, direct.bursts);
  EXPECT_EQ(rep.lost, direct.offered - direct.bursts);
  EXPECT_DOUBLE_EQ(rep.latency_p95_s, direct.charge_latency_p95_s);
  EXPECT_DOUBLE_EQ(rep.availability, direct.availability);
  // Gateway is batteryless (-1); tags report capacitor SoC.
  ASSERT_EQ(rep.final_soc.size(), direct.final_soc.size());
  EXPECT_DOUBLE_EQ(rep.final_soc[0], -1.0);
}

TEST(ScenBuild, AiotChecksumIsPoolInvariant) {
  auto spec = load(kAiotSpec);
  spec.run.replications = 6;
  std::uint64_t first = 0;
  for (const int pool : {1, 2, 8}) {
    scen::RunOverrides o;
    o.pool = pool;
    const auto s = scen::run_scenario(spec, o);
    if (pool == 1)
      first = s.checksum;
    else
      EXPECT_EQ(s.checksum, first) << "pool " << pool;
  }
  EXPECT_NE(first, 0u);
}

TEST(ScenBuild, AiotGridTopologyLowersToPinnedPlacement) {
  const auto spec = load(R"({
  "fleet": [
    { "class": "backscatter", "count": 8 },
    { "class": "watt", "count": 1 },
  ],
  "topology": { "kind": "grid", "pitch_m": 4 },
})");
  const auto cfg = scen::build_wpt_config(spec);
  ASSERT_TRUE(cfg.placement.has_value());
  EXPECT_EQ(cfg.placement->size(), 9);
  // A pinned layout makes every replication identical — the run stays
  // deterministic rather than degenerate.
  const auto direct = aiot::simulate_wpt(cfg);
  EXPECT_GE(direct.coverage_fraction, 0.0);
}

TEST(ScenBuild, BuildWptConfigRejectsOtherEngines) {
  const auto spec = load(kNetSpec);
  EXPECT_THROW((void)scen::build_wpt_config(spec), std::invalid_argument);
}

TEST(ScenBuild, AiotAssertionsReadMappedObservables) {
  auto spec = load(kAiotSpec);
  spec.assertions.push_back({"coverage_fraction", ">=", 0.0, -1, ""});
  spec.assertions.push_back({"delivered_fraction", "<=", 1.0, -1, ""});
  spec.assertions.push_back({"mean_final_soc", ">=", 0.0, -1, ""});
  const auto s = scen::run_scenario(spec);
  EXPECT_TRUE(s.assertions_passed);
  ASSERT_EQ(s.assertions.size(), 3u);
  EXPECT_DOUBLE_EQ(s.assertions[0].observed,
                   s.replications[0].goodput_fraction);
}
