// Loader validation: strict unknown-key detection, typed range checks,
// engine composition rules, and golden error-message formats with JSON
// path + line context.
#include "ambisim/scen/loader.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

using ambisim::scen::LoadResult;
using ambisim::scen::Loader;

namespace {

constexpr const char* kMinimalNet = R"({
  "fleet": [ { "group": "sensors", "class": "microwatt", "count": 8 } ],
})";

constexpr const char* kMinimalAmi = R"({
  "fleet": [
    { "class": "microwatt", "count": 4 },
    { "class": "milliwatt", "count": 1 },
    { "class": "watt", "count": 1 },
  ],
})";

bool has_diag(const LoadResult& r, const std::string& needle) {
  return std::any_of(r.diagnostics.begin(), r.diagnostics.end(),
                     [&](const auto& d) {
                       return d.format().find(needle) != std::string::npos;
                     });
}

TEST(ScenLoader, MinimalNetSpecLoadsWithDefaults) {
  const auto r = Loader{}.load_text(kMinimalNet);
  ASSERT_TRUE(r.ok()) << r.format_diagnostics();
  EXPECT_EQ(r.spec->engine(), ambisim::scen::Engine::Net);
  EXPECT_EQ(r.spec->sensor_count(), 8);
  EXPECT_DOUBLE_EQ(r.spec->run.duration_s, 3600.0);
  EXPECT_EQ(r.spec->run.replications, 1);
  EXPECT_FALSE(r.spec->faults.has_value());
}

TEST(ScenLoader, MinimalAmiSpecSelectsAmiEngine) {
  const auto r = Loader{}.load_text(kMinimalAmi);
  ASSERT_TRUE(r.ok()) << r.format_diagnostics();
  EXPECT_EQ(r.spec->engine(), ambisim::scen::Engine::Ami);
  EXPECT_EQ(r.spec->sensor_count(), 4);
}

TEST(ScenLoader, UnknownKeyGoldenDiagnostic) {
  const auto r = Loader{}.load_text(R"({
  "fleet": [ { "class": "microwatt", "count": 2 } ],
  "run": {
    "sed": 3
  },
})");
  ASSERT_FALSE(r.ok());
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].format(),
            "$.run (line 4): unknown key \"sed\"");
}

TEST(ScenLoader, TypeMismatchGoldenDiagnostic) {
  const auto r = Loader{}.load_text(R"({
  "fleet": [ { "class": "microwatt", "count": 2 } ],
  "run": { "duration_s": "long" },
})");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.diagnostics[0].format(),
            "$.run.duration_s (line 3): expected number, got string");
}

TEST(ScenLoader, RangeViolationGoldenDiagnostic) {
  const auto r = Loader{}.load_text(R"({
  "fleet": [ { "class": "microwatt", "count": 2,
               "battery": { "initial_soc": 1.5 } } ],
})");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.diagnostics[0].format(),
            "$.fleet[0].battery.initial_soc (line 3): "
            "must be in [0, 1] (got 1.5)");
}

TEST(ScenLoader, CollectsEveryDiagnosticInOnePass) {
  const auto r = Loader{}.load_text(R"({
  "fleet": [ { "class": "microwatt", "count": 0 } ],
  "run": { "pool": -1, "bogus": true },
})");
  ASSERT_FALSE(r.ok());
  EXPECT_GE(r.diagnostics.size(), 3u);
  EXPECT_TRUE(has_diag(r, "$.fleet[0].count"));
  EXPECT_TRUE(has_diag(r, "$.run.pool"));
  EXPECT_TRUE(has_diag(r, "unknown key \"bogus\""));
}

TEST(ScenLoader, KeywordOutsideClosedSetIsRejected) {
  const auto r = Loader{}.load_text(R"({
  "fleet": [ { "class": "microwatt", "count": 2 } ],
  "workload": { "routing": "shortest_path" },
})");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(has_diag(r, "$.workload.routing"));
  EXPECT_TRUE(has_diag(r, "\"min_hop\", \"min_energy\""));
}

TEST(ScenLoader, AmiCompositionNeedsExactlyOnePersonalAndOneServer) {
  const auto r = Loader{}.load_text(R"({
  "fleet": [
    { "class": "microwatt", "count": 4 },
    { "class": "milliwatt", "count": 2 },
    { "class": "watt", "count": 1 },
  ],
})");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(has_diag(r, "exactly 1"));
}

TEST(ScenLoader, EnergyCouplingLimitedToOneGroup) {
  const auto r = Loader{}.load_text(R"({
  "fleet": [
    { "class": "microwatt", "count": 2,
      "battery": { "kind": "thin_film_1mAh" } },
    { "class": "microwatt", "count": 2,
      "battery": { "kind": "coin_cell_cr2032" } },
  ],
})");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(has_diag(r, "at most one group"));
}

TEST(ScenLoader, HarvesterWithoutBatteryIsRejected) {
  const auto r = Loader{}.load_text(R"({
  "fleet": [ { "class": "microwatt", "count": 2,
               "harvester": { "avg_watt": 0.001 } } ],
})");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(has_diag(r, "needs a battery"));
}

TEST(ScenLoader, HarvesterNeedsExactlyOnePowerSource) {
  const auto both = Loader{}.load_text(R"({
  "fleet": [ { "class": "microwatt", "count": 2,
               "battery": {},
               "harvester": { "avg_watt": 0.001, "area_cm2": 2.0 } } ],
})");
  ASSERT_FALSE(both.ok());
  EXPECT_TRUE(has_diag(both, "not both"));
  const auto neither = Loader{}.load_text(R"({
  "fleet": [ { "class": "microwatt", "count": 2,
               "battery": {},
               "harvester": {} } ],
})");
  ASSERT_FALSE(neither.ok());
  EXPECT_TRUE(has_diag(neither, "avg_watt or area_cm2"));
}

TEST(ScenLoader, TopologyAndFaultsRejectedForAmiEngine) {
  const auto r = Loader{}.load_text(R"({
  "fleet": [
    { "class": "microwatt", "count": 4 },
    { "class": "milliwatt", "count": 1 },
    { "class": "watt", "count": 1 },
  ],
  "topology": { "kind": "grid" },
  "faults": { "crash_mttf_s": 100 },
})");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(has_diag(r, "$.topology"));
  EXPECT_TRUE(has_diag(r, "$.faults"));
}

TEST(ScenLoader, KindInapplicableTopologyKeyIsRejected) {
  const auto r = Loader{}.load_text(R"({
  "fleet": [ { "class": "microwatt", "count": 2 } ],
  "topology": { "kind": "grid", "field_side_m": 40 },
})");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(has_diag(r, "applies only to kind \"random\""));
}

TEST(ScenLoader, SeedBeyondExactDoubleRangeIsRejected) {
  const auto r = Loader{}.load_text(R"({
  "fleet": [ { "class": "microwatt", "count": 2 } ],
  "run": { "seed": 1e16 },
})");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(has_diag(r, "$.run.seed"));
}

TEST(ScenLoader, FinalSocAssertionNeedsNodeAndEnergy) {
  const auto no_node = Loader{}.load_text(R"({
  "fleet": [ { "class": "microwatt", "count": 2, "battery": {} } ],
  "assertions": [ { "check": "final_soc", "value": 0.5 } ],
})");
  ASSERT_FALSE(no_node.ok());
  EXPECT_TRUE(has_diag(no_node, "needs a \"node\" index"));
  const auto no_energy = Loader{}.load_text(R"({
  "fleet": [ { "class": "microwatt", "count": 2 } ],
  "assertions": [ { "check": "final_soc", "node": 1, "value": 0.5 } ],
})");
  ASSERT_FALSE(no_energy.ok());
  EXPECT_TRUE(has_diag(no_energy, "energy coupling"));
}

TEST(ScenLoader, ObsCounterAssertionNeedsMetricName) {
  const auto r = Loader{}.load_text(R"({
  "fleet": [ { "class": "microwatt", "count": 2 } ],
  "assertions": [ { "check": "obs_counter", "value": 1 } ],
})");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(has_diag(r, "needs a \"metric\" name"));
}

TEST(ScenLoader, UnknownCheckNamesTheEngine) {
  const auto r = Loader{}.load_text(R"({
  "fleet": [ { "class": "microwatt", "count": 2 } ],
  "assertions": [ { "check": "personal_battery_days", "value": 5 } ],
})");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(has_diag(
      r, "unknown check \"personal_battery_days\" for the net engine"));
}

TEST(ScenLoader, ParseErrorSurfacesAsRootDiagnostic) {
  const auto r = Loader{}.load_text("{\"fleet\": [}");
  ASSERT_FALSE(r.ok());
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].path, "$");
  EXPECT_EQ(r.diagnostics[0].line, 1);
}

TEST(ScenLoader, MissingFileReportsCleanly) {
  const auto r = Loader{}.load_file("/nonexistent/spec.scen.json");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(has_diag(r, "cannot open file"));
}

TEST(ScenLoader, AmiWorkloadKeysRejectedOnNetEngine) {
  const auto r = Loader{}.load_text(R"({
  "fleet": [ { "class": "microwatt", "count": 2 } ],
  "workload": { "events_per_hour": 10 },
})");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(has_diag(r, "applies only to the ami engine"));
}

}  // namespace

// --- aiot engine (backscatter fleet + Watt gateway) ---

namespace {

constexpr const char* kMinimalAiot = R"({
  "fleet": [
    { "group": "tags",    "class": "backscatter", "count": 16 },
    { "group": "gateway", "class": "watt",        "count": 1 },
  ],
})";

}  // namespace

TEST(ScenLoader, MinimalAiotSpecSelectsAiotEngine) {
  const auto r = Loader{}.load_text(kMinimalAiot);
  ASSERT_TRUE(r.ok()) << r.format_diagnostics();
  EXPECT_EQ(r.spec->engine(), ambisim::scen::Engine::Aiot);
  EXPECT_EQ(r.spec->tag_count(), 16);
  EXPECT_DOUBLE_EQ(r.spec->workload.gateway_tx_w, 2.0);
  EXPECT_DOUBLE_EQ(r.spec->workload.tag_loss_db, 15.0);
}

TEST(ScenLoader, AiotCompositionNeedsExactlyOneGateway) {
  const auto none = Loader{}.load_text(R"({
  "fleet": [ { "class": "backscatter", "count": 8 } ],
})");
  ASSERT_FALSE(none.ok());
  EXPECT_TRUE(has_diag(none, "gateway"));
  const auto two = Loader{}.load_text(R"({
  "fleet": [
    { "class": "backscatter", "count": 8 },
    { "class": "watt", "count": 2 },
  ],
})");
  ASSERT_FALSE(two.ok());
  const auto mixed = Loader{}.load_text(R"({
  "fleet": [
    { "class": "backscatter", "count": 8 },
    { "class": "watt", "count": 1 },
    { "class": "microwatt", "count": 4 },
  ],
})");
  EXPECT_FALSE(mixed.ok());
}

TEST(ScenLoader, AiotRejectsStorageStanzasAndFaults) {
  const auto battery = Loader{}.load_text(R"({
  "fleet": [
    { "class": "backscatter", "count": 8,
      "battery": { "kind": "thin_film_1mAh" } },
    { "class": "watt", "count": 1 },
  ],
})");
  ASSERT_FALSE(battery.ok());
  const auto faults = Loader{}.load_text(R"({
  "fleet": [
    { "class": "backscatter", "count": 8 },
    { "class": "watt", "count": 1 },
  ],
  "faults": { "crash_mttf_s": 1000 },
})");
  ASSERT_FALSE(faults.ok());
  EXPECT_TRUE(has_diag(faults, "brown-out"));
}

TEST(ScenLoader, AiotRejectsNetWorkloadAndRadioRange) {
  const auto mac = Loader{}.load_text(R"({
  "fleet": [
    { "class": "backscatter", "count": 8 },
    { "class": "watt", "count": 1 },
  ],
  "workload": { "mac": { "wake_interval_s": 0.5 } },
})");
  ASSERT_FALSE(mac.ok());
  const auto range = Loader{}.load_text(R"({
  "fleet": [
    { "class": "backscatter", "count": 8 },
    { "class": "watt", "count": 1 },
  ],
  "topology": { "kind": "random", "radio_range_m": 15 },
})");
  ASSERT_FALSE(range.ok());
  EXPECT_TRUE(has_diag(range, "net engine"));
}

TEST(ScenLoader, AiotWorkloadKnobsLoadAndRangeCheck) {
  const auto ok = Loader{}.load_text(R"({
  "fleet": [
    { "class": "backscatter", "count": 8 },
    { "class": "watt", "count": 1 },
  ],
  "workload": { "gateway_tx_w": 4.0, "tag_loss_db": 10 },
})");
  ASSERT_TRUE(ok.ok()) << ok.format_diagnostics();
  EXPECT_DOUBLE_EQ(ok.spec->workload.gateway_tx_w, 4.0);
  EXPECT_DOUBLE_EQ(ok.spec->workload.tag_loss_db, 10.0);
  const auto bad = Loader{}.load_text(R"({
  "fleet": [
    { "class": "backscatter", "count": 8 },
    { "class": "watt", "count": 1 },
  ],
  "workload": { "gateway_tx_w": 0 },
})");
  EXPECT_FALSE(bad.ok());
}

TEST(ScenLoader, AiotAssertionObservablesIncludeCoverage) {
  const auto r = Loader{}.load_text(R"({
  "fleet": [
    { "class": "backscatter", "count": 8 },
    { "class": "watt", "count": 1 },
  ],
  "assertions": [
    { "check": "coverage_fraction", "op": ">=", "value": 0.5 },
    { "check": "final_soc", "node": 1, "op": "<=", "value": 1.0 },
  ],
})");
  ASSERT_TRUE(r.ok()) << r.format_diagnostics();
  // net-only observables still name the engine in the rejection.
  const auto bad = Loader{}.load_text(R"({
  "fleet": [
    { "class": "backscatter", "count": 8 },
    { "class": "watt", "count": 1 },
  ],
  "assertions": [ { "check": "mean_hops", "op": ">=", "value": 1 } ],
})");
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(has_diag(bad, "aiot"));
}
