#include "ambisim/tech/subthreshold.hpp"

#include <gtest/gtest.h>

using namespace ambisim;
namespace u = ambisim::units;
using tech::SubthresholdModel;
using tech::TechnologyLibrary;

namespace {
const tech::TechnologyNode& n130() {
  return TechnologyLibrary::standard().node("130nm");
}
}  // namespace

TEST(Subthreshold, MatchesSuperThresholdDelayAtNominal) {
  const SubthresholdModel m(n130());
  EXPECT_NEAR(m.gate_delay(n130().vdd_nominal).value(),
              n130().fo4_delay.value(),
              n130().fo4_delay.value() * 1e-9);
}

TEST(Subthreshold, CurrentContinuousAtHandoff) {
  const SubthresholdModel m(n130());
  // Probe tightly around the handoff (Vth + 2 n VT ~ 0.478 V): the two
  // branches must agree to first order.
  const double vth = n130().vth.value();
  const double h = vth + 2.0 * 1.5 * m.thermal_voltage().value();
  const double below = m.on_current(u::Voltage(h - 1e-6)).value();
  const double above = m.on_current(u::Voltage(h + 1e-6)).value();
  EXPECT_NEAR(below / above, 1.0, 1e-3);
}

TEST(Subthreshold, DelayExplodesExponentiallyBelowVth) {
  const SubthresholdModel m(n130());
  const double vth = n130().vth.value();
  const double d_at_vth = m.gate_delay(u::Voltage(vth)).value();
  const double d_100mv_below = m.gate_delay(u::Voltage(vth - 0.1)).value();
  // 100 mV below threshold with n*VT ~ 39 mV: roughly e^{0.1/0.039} ~ 13x
  // slower in current, softened by the V/I delay form -> ~10x in delay.
  EXPECT_GT(d_100mv_below / d_at_vth, 8.0);
  EXPECT_LT(d_100mv_below / d_at_vth, 20.0);
}

TEST(Subthreshold, DynamicEnergyStillQuadratic) {
  const SubthresholdModel m(n130());
  // Above threshold cycles are fast, so leakage is negligible and the C*V^2
  // law shows through: doubling the voltage quadruples the energy.
  const auto e_600 = m.energy_per_op(u::Voltage(0.6), 1e3, 0.0);
  const auto e_1200 = m.energy_per_op(u::Voltage(1.2), 1e3, 0.0);
  EXPECT_NEAR(e_1200.value() / e_600.value(), 4.0, 0.1);
}

TEST(Subthreshold, MinimumEnergyPointExistsBelowNominal) {
  const SubthresholdModel m(n130());
  const auto mep = m.minimum_energy_voltage(1e3, 1e5);
  EXPECT_LT(mep.value(), n130().vdd_nominal.value());
  EXPECT_GT(mep.value(), m.functional_floor().value() - 1e-9);
  // Energy at the MEP beats both extremes.
  const auto e_mep = m.energy_per_op(mep, 1e3, 1e5);
  const auto e_nom = m.energy_per_op(n130().vdd_nominal, 1e3, 1e5);
  const auto e_floor = m.energy_per_op(
      u::Voltage(m.functional_floor().value() + 0.01), 1e3, 1e5);
  EXPECT_LT(e_mep.value(), e_nom.value());
  EXPECT_LE(e_mep.value(), e_floor.value());
}

TEST(Subthreshold, MoreIdleLeakageRaisesTheMep) {
  // A leakier design must stop scaling voltage earlier.
  const SubthresholdModel m(n130());
  const auto mep_light = m.minimum_energy_voltage(1e3, 1e4);
  const auto mep_heavy = m.minimum_energy_voltage(1e3, 1e7);
  EXPECT_GT(mep_heavy.value(), mep_light.value());
}

TEST(Subthreshold, MepEnergyFarBelowNominalEnergy) {
  // The payoff claim: an order of magnitude per operation.
  const SubthresholdModel m(n130());
  const auto mep = m.minimum_energy_voltage(1e3, 1e4);
  const double ratio =
      m.energy_per_op(n130().vdd_nominal, 1e3, 1e4).value() /
      m.energy_per_op(mep, 1e3, 1e4).value();
  EXPECT_GT(ratio, 5.0);
}

TEST(Subthreshold, Validation) {
  EXPECT_THROW(SubthresholdModel(n130(), 0.5), std::invalid_argument);
  EXPECT_THROW(SubthresholdModel(n130(), 1.5, 100.0),
               std::invalid_argument);
  const SubthresholdModel m(n130());
  EXPECT_THROW(m.on_current(u::Voltage(0.0)), std::domain_error);
  EXPECT_THROW(m.on_current(u::Voltage(5.0)), std::domain_error);
  EXPECT_THROW(m.energy_per_op(u::Voltage(0.5), -1.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(m.max_frequency(u::Voltage(0.5), 0.0),
               std::invalid_argument);
}

// Property: the MEP exists on every node of the roadmap, and sits at or
// below ~Vth + a few hundred mV.
class MepAcrossNodes : public ::testing::TestWithParam<const char*> {};

TEST_P(MepAcrossNodes, MepNearThreshold) {
  const auto& n = TechnologyLibrary::standard().node(GetParam());
  const SubthresholdModel m(n);
  const auto mep = m.minimum_energy_voltage(1e3, 1e5);
  EXPECT_LT(mep.value(), n.vth.value() + 0.4) << n.name;
  EXPECT_GT(mep.value(), 0.1) << n.name;
}

INSTANTIATE_TEST_SUITE_P(Roadmap, MepAcrossNodes,
                         ::testing::Values("350nm", "250nm", "180nm",
                                           "130nm", "90nm", "65nm", "45nm"));
