#include "ambisim/tech/technology.hpp"

#include <gtest/gtest.h>

using namespace ambisim;
namespace u = ambisim::units;
using namespace ambisim::units::literals;
using tech::TechnologyLibrary;
using tech::TechnologyNode;

TEST(TechnologyLibrary, StandardHasSevenGenerations) {
  const auto& lib = TechnologyLibrary::standard();
  EXPECT_EQ(lib.size(), 7u);
  EXPECT_EQ(lib.all().front().name, "350nm");
  EXPECT_EQ(lib.all().back().name, "45nm");
}

TEST(TechnologyLibrary, LookupByNameAndYear) {
  const auto& lib = TechnologyLibrary::standard();
  EXPECT_EQ(lib.node("130nm").year, 2001);
  EXPECT_THROW((void)lib.node("42nm"), std::out_of_range);
  EXPECT_EQ(lib.by_year(2003).name, "90nm");
  EXPECT_EQ(lib.by_year(2004).name, "90nm");
  // Before the first node: clamps to the oldest.
  EXPECT_EQ(lib.by_year(1980).name, "350nm");
  EXPECT_EQ(lib.by_year(2100).name, "45nm");
}

TEST(TechnologyLibrary, EmptyLibraryRejected) {
  EXPECT_THROW(TechnologyLibrary({}), std::invalid_argument);
}

TEST(Technology, GateDelayNormalizedAtNominal) {
  for (const auto& n : TechnologyLibrary::standard().all()) {
    EXPECT_NEAR(tech::gate_delay(n, n.vdd_nominal).value(),
                n.fo4_delay.value(), 1e-18)
        << n.name;
  }
}

TEST(Technology, GateDelayGrowsAsVoltageDrops) {
  const auto& n = TechnologyLibrary::standard().node("130nm");
  const auto d_hi = tech::gate_delay(n, n.vdd_nominal);
  const auto d_mid = tech::gate_delay(n, 1.0_V);
  const auto d_lo = tech::gate_delay(n, n.vdd_min);
  EXPECT_LT(d_hi, d_mid);
  EXPECT_LT(d_mid, d_lo);
}

TEST(Technology, VoltageRangeEnforced) {
  const auto& n = TechnologyLibrary::standard().node("130nm");
  EXPECT_THROW(tech::gate_delay(n, 0.5_V), std::domain_error);
  EXPECT_THROW(tech::gate_delay(n, 2.0_V), std::domain_error);
  EXPECT_THROW(tech::switching_energy(n, 0.1_V), std::domain_error);
}

TEST(Technology, MaxFrequencyInverseToDepth) {
  const auto& n = TechnologyLibrary::standard().node("90nm");
  const auto f20 = tech::max_frequency(n, n.vdd_nominal, 20.0);
  const auto f40 = tech::max_frequency(n, n.vdd_nominal, 40.0);
  EXPECT_NEAR(f20.value(), 2.0 * f40.value(), 1.0);
  EXPECT_THROW(tech::max_frequency(n, n.vdd_nominal, 0.0),
               std::invalid_argument);
}

TEST(Technology, SwitchingEnergyIsCTimesVSquared) {
  const auto& n = TechnologyLibrary::standard().node("180nm");
  const auto e = tech::switching_energy(n, 1.8_V);
  EXPECT_NEAR(e.value(), n.gate_cap.value() * 1.8 * 1.8, 1e-21);
}

TEST(Technology, LeakageCurrentCubicInVoltage) {
  const auto& n = TechnologyLibrary::standard().node("90nm");
  const auto i_nom = tech::leakage_current(n, n.vdd_nominal);
  const auto i_half = tech::leakage_current(
      n, u::Voltage(n.vdd_nominal.value() * 0.7));
  EXPECT_NEAR(i_half.value() / i_nom.value(), 0.343, 1e-9);
}

TEST(Technology, DynamicPowerLinearInFrequencyAndActivity) {
  const auto& n = TechnologyLibrary::standard().node("130nm");
  const u::Voltage v = n.vdd_nominal;
  const u::Frequency f = 100_MHz;
  const auto p1 = tech::dynamic_power(n, 1e6, 0.1, f, v);
  const auto p2 = tech::dynamic_power(n, 1e6, 0.2, f, v);
  const auto p3 = tech::dynamic_power(n, 1e6, 0.1, 200_MHz, v);
  EXPECT_NEAR(p2.value(), 2.0 * p1.value(), 1e-12);
  EXPECT_NEAR(p3.value(), 2.0 * p1.value(), 1e-12);
}

TEST(Technology, DynamicPowerRejectsOverclock) {
  const auto& n = TechnologyLibrary::standard().node("130nm");
  const auto fmax = tech::max_frequency(n, n.vdd_min);
  EXPECT_THROW(tech::dynamic_power(n, 1e6, 0.5, fmax * 2.0, n.vdd_min),
               std::domain_error);
  EXPECT_THROW(tech::dynamic_power(n, -1.0, 0.5, 1_MHz, n.vdd_nominal),
               std::invalid_argument);
  EXPECT_THROW(tech::dynamic_power(n, 1e6, 1.5, 1_MHz, n.vdd_nominal),
               std::invalid_argument);
}

TEST(Technology, TotalPowerIsDynamicPlusLeakage) {
  const auto& n = TechnologyLibrary::standard().node("90nm");
  const u::Voltage v = n.vdd_nominal;
  const u::Frequency f = 50_MHz;
  const auto total = tech::total_power(n, 2e5, 0.2, f, v);
  const auto dyn = tech::dynamic_power(n, 2e5, 0.2, f, v);
  const auto leak = tech::leakage_power_per_gate(n, v) * 2e5;
  EXPECT_NEAR(total.value(), (dyn + leak).value(), 1e-15);
}

TEST(Technology, EnergyPerOpIncludesLeakageShare) {
  const auto& n = TechnologyLibrary::standard().node("65nm");
  const u::Voltage v = n.vdd_nominal;
  const u::Frequency f = tech::max_frequency(n, v);
  const auto no_idle = tech::energy_per_op(n, 1e4, v, f, 0.0);
  const auto with_idle = tech::energy_per_op(n, 1e4, v, f, 1e6);
  EXPECT_GT(with_idle, no_idle);
  EXPECT_THROW(tech::energy_per_op(n, -1.0, v, f, 0.0),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Scaling-law properties across the whole roadmap.
// ---------------------------------------------------------------------------
class RoadmapScaling : public ::testing::TestWithParam<int> {};

TEST_P(RoadmapScaling, NewerNodeHasLowerSwitchingEnergy) {
  const auto& lib = TechnologyLibrary::standard();
  const auto i = static_cast<std::size_t>(GetParam());
  const auto& older = lib.all()[i];
  const auto& newer = lib.all()[i + 1];
  EXPECT_GT(tech::switching_energy(older, older.vdd_nominal),
            tech::switching_energy(newer, newer.vdd_nominal))
      << older.name << " vs " << newer.name;
}

TEST_P(RoadmapScaling, NewerNodeIsFaster) {
  const auto& lib = TechnologyLibrary::standard();
  const auto i = static_cast<std::size_t>(GetParam());
  const auto& older = lib.all()[i];
  const auto& newer = lib.all()[i + 1];
  EXPECT_LT(tech::max_frequency(older, older.vdd_nominal),
            tech::max_frequency(newer, newer.vdd_nominal));
}

TEST_P(RoadmapScaling, NewerNodeLeaksMore) {
  const auto& lib = TechnologyLibrary::standard();
  const auto i = static_cast<std::size_t>(GetParam());
  const auto& older = lib.all()[i];
  const auto& newer = lib.all()[i + 1];
  EXPECT_LT(tech::leakage_current(older, older.vdd_nominal),
            tech::leakage_current(newer, newer.vdd_nominal));
}

TEST_P(RoadmapScaling, VoltageScalesDown) {
  const auto& lib = TechnologyLibrary::standard();
  const auto i = static_cast<std::size_t>(GetParam());
  EXPECT_GE(lib.all()[i].vdd_nominal, lib.all()[i + 1].vdd_nominal);
  EXPECT_GT(lib.all()[i].feature, lib.all()[i + 1].feature);
}

INSTANTIATE_TEST_SUITE_P(AdjacentGenerations, RoadmapScaling,
                         ::testing::Range(0, 6));

// Gate delay must decrease monotonically over the full DVS voltage range on
// every node (sanity of the alpha-power fit).
class DelayMonotonicity : public ::testing::TestWithParam<const char*> {};

TEST_P(DelayMonotonicity, DelayFallsWithVoltage) {
  const auto& n = TechnologyLibrary::standard().node(GetParam());
  double prev = 1e9;
  for (int i = 0; i <= 20; ++i) {
    const double v = n.vdd_min.value() +
                     (n.vdd_nominal.value() - n.vdd_min.value()) * i / 20.0;
    const double d = tech::gate_delay(n, u::Voltage(v)).value();
    EXPECT_LT(d, prev) << n.name << " at " << v << " V";
    prev = d;
  }
}

INSTANTIATE_TEST_SUITE_P(AllNodes, DelayMonotonicity,
                         ::testing::Values("350nm", "250nm", "180nm",
                                           "130nm", "90nm", "65nm", "45nm"));
