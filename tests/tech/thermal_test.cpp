#include "ambisim/tech/thermal.hpp"

#include <gtest/gtest.h>

using namespace ambisim;
namespace u = ambisim::units;
using namespace ambisim::units::literals;
using tech::ThermalModel;

TEST(Thermal, LeakageMultiplierDoublesPerInterval) {
  const ThermalModel m(1.0);
  EXPECT_NEAR(m.leakage_multiplier(25.0), 1.0, 1e-12);
  EXPECT_NEAR(m.leakage_multiplier(50.0), 2.0, 1e-12);
  EXPECT_NEAR(m.leakage_multiplier(75.0), 4.0, 1e-12);
  EXPECT_NEAR(m.leakage_multiplier(0.0), 0.5, 1e-12);
}

TEST(Thermal, NoLeakageIsLinear) {
  const ThermalModel m(2.0);  // 2 K/W
  const auto eq = m.solve(10_W, u::Power(0.0));
  ASSERT_TRUE(eq.stable);
  EXPECT_NEAR(eq.temperature_c, 25.0 + 2.0 * 10.0, 1e-6);
  EXPECT_NEAR(eq.total_power.value(), 10.0, 1e-9);
}

TEST(Thermal, FeedbackRaisesEquilibriumAboveLinear) {
  const ThermalModel m(2.0);
  const auto eq = m.solve(5_W, 1_W);
  ASSERT_TRUE(eq.stable);
  // Linear estimate: 25 + 2*(5+1) = 37 C; feedback pushes leakage above
  // its 25 C value, so T > 37.
  EXPECT_GT(eq.temperature_c, 37.0);
  EXPECT_GT(eq.leakage_power.value(), 1.0);
  EXPECT_LT(eq.temperature_c, ThermalModel::kMaxJunction);
}

TEST(Thermal, HighResistanceRunsAway) {
  const ThermalModel good(1.0);
  const ThermalModel bad(40.0);  // terrible heatsink
  EXPECT_TRUE(good.solve(3_W, 1_W).stable);
  const auto eq = bad.solve(3_W, 1_W);
  EXPECT_FALSE(eq.stable);
  EXPECT_GT(eq.temperature_c, ThermalModel::kMaxJunction);
}

TEST(Thermal, CriticalResistanceSeparatesRegimes) {
  const u::Power dyn = 3_W;
  const u::Power leak = 1_W;
  const double rc = ThermalModel::critical_resistance(dyn, leak);
  ASSERT_GT(rc, 0.0);
  EXPECT_TRUE(ThermalModel(rc * 0.95).solve(dyn, leak).stable);
  EXPECT_FALSE(ThermalModel(rc * 1.05).solve(dyn, leak).stable);
}

TEST(Thermal, MoreLeakageLowersCriticalResistance) {
  const double rc_low = ThermalModel::critical_resistance(3_W, 0.2_W);
  const double rc_high = ThermalModel::critical_resistance(3_W, 2.0_W);
  EXPECT_GT(rc_low, rc_high);
}

TEST(Thermal, HotterAmbientLowersCriticalResistance) {
  const double rc_25 = ThermalModel::critical_resistance(3_W, 1_W, 25.0);
  const double rc_60 = ThermalModel::critical_resistance(3_W, 1_W, 60.0);
  EXPECT_GT(rc_25, rc_60);
}

TEST(Thermal, Validation) {
  EXPECT_THROW(ThermalModel(0.0), std::invalid_argument);
  EXPECT_THROW(ThermalModel(1.0, 200.0), std::invalid_argument);
  EXPECT_THROW(ThermalModel(1.0, 25.0, -5.0), std::invalid_argument);
  const ThermalModel m(1.0);
  EXPECT_THROW(m.solve(u::Power(-1.0), 1_W), std::invalid_argument);
  EXPECT_THROW(m.solve(1_W, 1_W, 0), std::invalid_argument);
  EXPECT_THROW(
      ThermalModel::critical_resistance(u::Power(0.0), u::Power(0.0)),
      std::invalid_argument);
}

// Property: equilibrium temperature is monotone in dynamic power while
// stable.
class ThermalLoad : public ::testing::TestWithParam<double> {};

TEST_P(ThermalLoad, EquilibriumMonotoneInPower) {
  const ThermalModel m(GetParam());
  double prev = 0.0;
  for (double p = 1.0; p <= 10.0; p += 1.0) {
    const auto eq = m.solve(u::Power(p), 0.5_W);
    if (!eq.stable) break;
    EXPECT_GT(eq.temperature_c, prev);
    prev = eq.temperature_c;
  }
  EXPECT_GT(prev, 25.0);
}

INSTANTIATE_TEST_SUITE_P(Resistances, ThermalLoad,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0));
