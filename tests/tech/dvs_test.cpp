#include "ambisim/tech/dvs.hpp"

#include <gtest/gtest.h>

using namespace ambisim;
namespace u = ambisim::units;
using namespace ambisim::units::literals;
using tech::DvsModel;
using tech::TechnologyLibrary;

namespace {
const tech::TechnologyNode& node130() {
  return TechnologyLibrary::standard().node("130nm");
}
}  // namespace

TEST(DvsModel, PointsSpanVoltageRangeAscending) {
  const DvsModel dvs(node130(), 8);
  ASSERT_EQ(dvs.points().size(), 8u);
  EXPECT_DOUBLE_EQ(dvs.slowest().voltage.value(), node130().vdd_min.value());
  EXPECT_DOUBLE_EQ(dvs.fastest().voltage.value(),
                   node130().vdd_nominal.value());
  for (std::size_t i = 1; i < dvs.points().size(); ++i) {
    EXPECT_GT(dvs.points()[i].voltage, dvs.points()[i - 1].voltage);
    EXPECT_GT(dvs.points()[i].frequency, dvs.points()[i - 1].frequency);
  }
}

TEST(DvsModel, RejectsBadConstruction) {
  EXPECT_THROW(DvsModel(node130(), 1), std::invalid_argument);
  EXPECT_THROW(DvsModel(node130(), 8, -1.0), std::invalid_argument);
}

TEST(DvsModel, SlowestFeasiblePicksMinimalFrequency) {
  const DvsModel dvs(node130(), 16);
  // A very loose deadline: the slowest point suffices.
  const auto loose = dvs.slowest_feasible(1e3, 1_s);
  EXPECT_DOUBLE_EQ(loose.voltage.value(), dvs.slowest().voltage.value());
  // A deadline only the fastest point meets.
  const double cycles = dvs.fastest().frequency.value() * 1e-3 * 0.99;
  const auto tight = dvs.slowest_feasible(cycles, 1_ms);
  EXPECT_DOUBLE_EQ(tight.voltage.value(), dvs.fastest().voltage.value());
}

TEST(DvsModel, InfeasibleDeadlineThrows) {
  const DvsModel dvs(node130(), 16);
  const double cycles = dvs.fastest().frequency.value() * 10.0;  // 10 s work
  EXPECT_THROW((void)dvs.slowest_feasible(cycles, 1_s), std::domain_error);
  EXPECT_THROW((void)dvs.slowest_feasible(-1.0, 1_s), std::invalid_argument);
  EXPECT_THROW((void)dvs.slowest_feasible(1.0, u::Time(0.0)),
               std::invalid_argument);
}

TEST(DvsModel, ExactlyCriticalDeadlineIsFeasible) {
  const DvsModel dvs(node130(), 16);
  const double cycles = 1e6;
  const u::Time exact{cycles / dvs.fastest().frequency.value()};
  EXPECT_NO_THROW((void)dvs.slowest_feasible(cycles, exact));
}

TEST(DvsModel, EnergyGrowsWithVoltageWhenDynamicDominates) {
  const DvsModel dvs(node130(), 16);
  // Large switched-gate count per cycle: dynamic energy dominates leakage.
  u::Energy prev{1e18};
  for (auto it = dvs.points().rbegin(); it != dvs.points().rend(); ++it) {
    const auto e = dvs.energy(*it, 1e6, 1e5, 1e4);
    EXPECT_LT(e, prev);
    prev = e;
  }
}

TEST(DvsModel, OptimalNeverWorseThanSlowestFeasible) {
  const DvsModel dvs(node130(), 16);
  const double cycles = 2e6;
  for (double slack : {1.0, 1.5, 2.0, 4.0}) {
    const u::Time deadline{slack * cycles /
                           dvs.fastest().frequency.value()};
    const auto sf = dvs.slowest_feasible(cycles, deadline);
    const auto opt = dvs.optimal(cycles, deadline, 5e4, 5e5);
    EXPECT_LE(dvs.energy(opt, cycles, 5e4, 5e5).value(),
              dvs.energy(sf, cycles, 5e4, 5e5).value() * (1.0 + 1e-12));
  }
}

TEST(DvsModel, OptimalMeetsDeadline) {
  const DvsModel dvs(node130(), 16);
  const double cycles = 2e6;
  const u::Time deadline{3.0 * cycles / dvs.fastest().frequency.value()};
  const auto opt = dvs.optimal(cycles, deadline, 5e4, 5e5);
  EXPECT_LE(cycles / opt.frequency.value(),
            deadline.value() * (1.0 + 1e-9));
}

TEST(DvsModel, LeakageEnergyPerCycleAlsoFallsWithVoltage) {
  // In this model leakage accrues only while executing, and P_leak/f falls
  // with voltage (quartic power vs ~linear frequency), so the slowest
  // feasible point is the optimum even for leakage-dominated workloads.
  const auto& n45 = TechnologyLibrary::standard().node("45nm");
  const DvsModel dvs(n45, 16);
  const double cycles = 1e6;
  const u::Time deadline{20.0 * cycles / dvs.fastest().frequency.value()};
  const auto opt = dvs.optimal(cycles, deadline, 10.0, 5e8);
  EXPECT_DOUBLE_EQ(opt.frequency.value(), dvs.slowest().frequency.value());
  // And the underlying reason: leakage-per-cycle is monotone in voltage.
  const auto lo = dvs.energy(dvs.slowest(), 1.0, 0.0, 1e6);
  const auto hi = dvs.energy(dvs.fastest(), 1.0, 0.0, 1e6);
  EXPECT_LT(lo, hi);
}

// Property: across every technology node, DVS at 2x slack saves energy
// relative to the fastest point for a dynamic-dominated workload.
class DvsSavings : public ::testing::TestWithParam<const char*> {};

TEST_P(DvsSavings, TwoXSlackSavesEnergy) {
  const auto& n = TechnologyLibrary::standard().node(GetParam());
  const DvsModel dvs(n, 16);
  const double cycles = 1e6;
  const u::Time deadline{2.0 * cycles / dvs.fastest().frequency.value()};
  const auto opt = dvs.optimal(cycles, deadline, 1e5, 1e5);
  const auto e_opt = dvs.energy(opt, cycles, 1e5, 1e5);
  const auto e_fast = dvs.energy(dvs.fastest(), cycles, 1e5, 1e5);
  EXPECT_LT(e_opt.value(), e_fast.value() * 0.95) << n.name;
}

INSTANTIATE_TEST_SUITE_P(AllNodes, DvsSavings,
                         ::testing::Values("350nm", "250nm", "180nm",
                                           "130nm", "90nm", "65nm", "45nm"));
