#include "ambisim/tech/memory_energy.hpp"

#include <gtest/gtest.h>

using namespace ambisim;
namespace u = ambisim::units;
using namespace ambisim::units::literals;
using tech::OffChipModel;
using tech::SramModel;
using tech::TechnologyLibrary;

namespace {
const tech::TechnologyNode& n130() {
  return TechnologyLibrary::standard().node("130nm");
}
}  // namespace

TEST(SramModel, AccessEnergyGrowsWithCapacity) {
  const auto e8k = SramModel::access_energy(n130(), 1.3_V, 8.0 * 1024 * 8);
  const auto e32k = SramModel::access_energy(n130(), 1.3_V, 32.0 * 1024 * 8);
  const auto e256k =
      SramModel::access_energy(n130(), 1.3_V, 256.0 * 1024 * 8);
  EXPECT_LT(e8k, e32k);
  EXPECT_LT(e32k, e256k);
}

TEST(SramModel, SqrtLawIsSublinear) {
  // 4x the capacity must cost clearly less than 4x the array energy term.
  const double small = 16.0 * 1024 * 8;
  const auto e1 = SramModel::access_energy(n130(), 1.3_V, small);
  const auto e4 = SramModel::access_energy(n130(), 1.3_V, 4.0 * small);
  EXPECT_LT(e4.value(), 4.0 * e1.value());
  EXPECT_GT(e4.value(), e1.value());
}

TEST(SramModel, WiderWordCostsMore) {
  const double cap = 64.0 * 1024 * 8;
  EXPECT_LT(SramModel::access_energy(n130(), 1.3_V, cap, 16),
            SramModel::access_energy(n130(), 1.3_V, cap, 64));
}

TEST(SramModel, InputValidation) {
  EXPECT_THROW(SramModel::access_energy(n130(), 1.3_V, -1.0),
               std::invalid_argument);
  EXPECT_THROW(SramModel::access_energy(n130(), 1.3_V, 64.0, 128.0),
               std::invalid_argument);
  EXPECT_THROW(SramModel::leakage(n130(), 1.3_V, -5.0),
               std::invalid_argument);
}

TEST(SramModel, LeakageLinearInCapacity) {
  const auto p1 = SramModel::leakage(n130(), 1.3_V, 1e6);
  const auto p2 = SramModel::leakage(n130(), 1.3_V, 2e6);
  EXPECT_NEAR(p2.value(), 2.0 * p1.value(), 1e-18);
}

TEST(SramModel, NewerNodeCheaperAccess) {
  const auto& n90 = TechnologyLibrary::standard().node("90nm");
  const double cap = 32.0 * 1024 * 8;
  EXPECT_LT(
      SramModel::access_energy(n90, n90.vdd_nominal, cap),
      SramModel::access_energy(n130(), n130().vdd_nominal, cap));
}

TEST(OffChipModel, EnergyQuadraticInIoVoltage) {
  const auto e25 = OffChipModel::access_energy(2.5_V);
  const auto e33 = OffChipModel::access_energy(3.3_V);
  EXPECT_NEAR(e33.value() / e25.value(), (3.3 * 3.3) / (2.5 * 2.5), 1e-9);
}

TEST(OffChipModel, OffChipDwarfsOnChip) {
  // The keynote's memory-wall argument: an external access costs orders of
  // magnitude more than an L1 hit.
  const auto on = SramModel::access_energy(n130(), 1.3_V, 32.0 * 1024 * 8);
  const auto off = OffChipModel::access_energy(2.5_V) +
                   OffChipModel::dram_core_energy();
  EXPECT_GT(off.value(), 20.0 * on.value());
}

TEST(OffChipModel, LinearInWordWidth) {
  const auto e32 = OffChipModel::access_energy(2.5_V, 32.0);
  const auto e64 = OffChipModel::access_energy(2.5_V, 64.0);
  EXPECT_NEAR(e64.value(), 2.0 * e32.value(), 1e-15);
  EXPECT_THROW(OffChipModel::access_energy(2.5_V, 0.0),
               std::invalid_argument);
  EXPECT_THROW(OffChipModel::dram_core_energy(-1.0), std::invalid_argument);
}
