// Cross-module integration tests: the reproduction's headline claims, each
// checked end-to-end through the same code paths the benches use.
#include <gtest/gtest.h>

#include "ambisim/arch/soc.hpp"
#include "ambisim/core/device_node.hpp"
#include "ambisim/core/power_info.hpp"
#include "ambisim/core/scenario.hpp"
#include "ambisim/dse/dvs_schedule.hpp"
#include "ambisim/dse/pareto.hpp"
#include "ambisim/energy/harvester.hpp"
#include "ambisim/net/network_sim.hpp"
#include "ambisim/workload/streams.hpp"

using namespace ambisim;
namespace u = ambisim::units;
using namespace ambisim::units::literals;

namespace {
const tech::TechnologyNode& n130() {
  return tech::TechnologyLibrary::standard().node("130nm");
}
}  // namespace

// F1 claim: the three composed devices sit in three distinct power bands
// separated by orders of magnitude, across process nodes.
TEST(Integration, PowerInfoGraphShowsThreeBands) {
  core::PowerInfoGraph g;
  for (const auto* name : {"180nm", "130nm", "90nm"}) {
    const auto& n = tech::TechnologyLibrary::standard().node(name);
    g.add(core::autonomous_sensor_node(n).to_point());
    g.add(core::personal_audio_node(n).to_point());
    g.add(core::home_media_server(n).to_point());
  }
  const auto uw = g.cluster(core::DeviceClass::MicroWatt);
  const auto mw = g.cluster(core::DeviceClass::MilliWatt);
  const auto w = g.cluster(core::DeviceClass::Watt);
  EXPECT_EQ(uw.count, 3);
  EXPECT_EQ(mw.count, 3);
  EXPECT_EQ(w.count, 3);
  // Band centroids at least ~2 decades apart.
  EXPECT_GT(mw.mean_log10_power - uw.mean_log10_power, 2.0);
  EXPECT_GT(w.mean_log10_power - mw.mean_log10_power, 2.0);
}

// F3 claim: the autonomous node is energy-neutral at its design duty cycle,
// and stops being neutral if the duty cycle is pushed an order of magnitude
// higher.
TEST(Integration, MicroWattNeutralityIsDutyLimited) {
  const auto sensor = core::autonomous_sensor_node(n130());
  ASSERT_TRUE(sensor.energy_neutral());

  const energy::SolarHarvester pv(2_cm2, 0.15, true);
  // Reconstruct the node's active/sleep split and push the duty up.
  const u::Power avg = sensor.average_power();
  EXPECT_LT(avg, pv.average_power());
  EXPECT_GT(avg * 30.0, pv.average_power());  // 30x duty would break it
}

// F4 claim: denser networks die sooner at first death (sink-adjacent hot
// spot) even though mean lifetime is unchanged-ish.
TEST(Integration, DenserNetworkHasHotterHotspot) {
  net::SensorNetworkConfig sparse;
  sparse.node_count = 25;
  sparse.seed = 3;
  net::SensorNetworkConfig dense = sparse;
  dense.node_count = 100;
  const auto rs = net::simulate_sensor_network(sparse);
  const auto rd = net::simulate_sensor_network(dense);
  EXPECT_GT(rd.hotspot_factor, rs.hotspot_factor);
  EXPECT_LT(rd.first_node_death.value(), rs.first_node_death.value());
}

// F5/F6 claim: DVS extends the personal node's battery life, with savings
// bounded by the voltage range of the process.
TEST(Integration, DvsSavingsBoundedByVoltageRatio) {
  const tech::DvsModel dvs(n130(), 16, 28.0);
  const auto g = workload::audio_pipeline_graph();
  double cycles = 0.0;
  for (int t = 0; t < g.task_count(); ++t) cycles += g.task(t).ops;
  const u::Time t0{cycles / dvs.fastest().frequency.value()};
  const auto r = dse::schedule_with_dvs(g, dvs, t0 * 10.0, 40e3, 360e3);
  ASSERT_TRUE(r.feasible);
  // Savings can't exceed 1 - (Vmin/Vnom)^2 (dynamic-only bound).
  const double vr = n130().vdd_min.value() / n130().vdd_nominal.value();
  EXPECT_LT(r.savings, 1.0 - vr * vr + 0.05);
  EXPECT_GT(r.savings, 0.3);
}

// F7 claim: only accelerator-assisted SoCs reach HD; the Pareto front is
// consistent.
TEST(Integration, OnlyAcceleratedSocReachesHd) {
  const auto& n = n130();
  std::vector<arch::CacheLevelSpec> caches{
      {"L1", 32.0 * 1024 * 8, 32.0, 2_ns},
      {"L2", 256.0 * 1024 * 8, 64.0, 8_ns}};
  arch::SocModel risc("risc", n, n.vdd_nominal);
  risc.add_core(arch::risc_core()).set_memory(caches, true).set_bus(4, 32);
  arch::SocModel accel("accel", n, n.vdd_nominal);
  accel.add_core(arch::vliw_core())
      .add_core(arch::accelerator_core("mc"))
      .add_core(arch::accelerator_core("dct"))
      .set_memory(caches, true)
      .set_bus(6, 128);

  const auto hd = workload::video_decode_hd();
  EXPECT_LT(risc.max_rate(hd.demand).value(), hd.unit_rate.value());
  EXPECT_GE(accel.max_rate(hd.demand).value(), hd.unit_rate.value());

  std::vector<dse::ParetoPoint> pts;
  for (const auto* s : {&risc, &accel}) {
    const auto ev = s->evaluate(hd.demand,
                                units::min(s->max_rate(hd.demand),
                                           hd.unit_rate));
    pts.push_back({ev.power.value(), s->max_rate(hd.demand).value(),
                   s->name()});
  }
  EXPECT_TRUE(dse::is_pareto_front(dse::pareto_front(pts)));
}

// F8 claim: in the end-to-end scenario the Watt node dominates energy while
// the microWatt nodes remain neutral — feasibility and energy concentration
// live at opposite ends of the network.
TEST(Integration, ScenarioEnergyConcentrationVsFeasibility) {
  core::AmiScenarioConfig cfg;
  cfg.duration = u::Time(6.0 * 3600.0);
  const auto r = core::run_ami_scenario(cfg);
  EXPECT_GT(r.class_energy.share("Watt-node"), 0.9);
  EXPECT_TRUE(r.sensors_energy_neutral);
  EXPECT_GT(r.personal_battery_days, 1.0);
  // End-to-end latency stays interactive (< 2 s).
  if (!r.end_to_end_latency.empty())
    EXPECT_LT(r.end_to_end_latency.percentile(95.0), 2.0);
}

// Technology-scaling claim: re-targeting the personal node to a newer
// process reduces its power at equal function.
TEST(Integration, NewerProcessLowersPersonalNodePower) {
  const auto& n180 = tech::TechnologyLibrary::standard().node("180nm");
  const auto& n90 = tech::TechnologyLibrary::standard().node("90nm");
  const auto old_node = core::personal_audio_node(n180);
  const auto new_node = core::personal_audio_node(n90);
  EXPECT_LT(new_node.average_power().value(),
            old_node.average_power().value());
}

// Consistency: the scenario's sensor power matches the composed device
// model within a factor (independent implementations of the same node).
TEST(Integration, ScenarioAndDeviceModelAgreeOnSensorScale) {
  core::AmiScenarioConfig cfg;
  cfg.duration = u::Time(3600.0);
  const auto r = core::run_ami_scenario(cfg);
  const auto device = core::autonomous_sensor_node(cfg.technology);
  const double ratio =
      r.sensor_average_power / device.average_power().value();
  EXPECT_GT(ratio, 0.1);
  EXPECT_LT(ratio, 10.0);
}
