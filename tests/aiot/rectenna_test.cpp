// RF power-transfer front end: incident density physics and the rectenna
// efficiency curve (the monotone link the coverage benchmark gate rides).
#include "ambisim/aiot/rectenna.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace u = ambisim::units;
using ambisim::aiot::incident_density;
using ambisim::aiot::RectennaModel;
using ambisim::radio::PathLossModel;

namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(AiotRectenna, DensityAtReferenceIsFreeSpaceSphere) {
  const PathLossModel loss = PathLossModel::free_space();
  const u::PowerDensity s =
      incident_density(u::Power(2.0), loss, loss.ref_distance);
  EXPECT_NEAR(s.value(), 2.0 / (4.0 * kPi), 1e-12);
}

TEST(AiotRectenna, FreeSpaceDensityIsInverseSquare) {
  // With exponent 2 the log-distance excess reduces to 1/d^2 exactly, so
  // the whole chain must reproduce S = P / (4 pi d^2).
  const PathLossModel loss = PathLossModel::free_space();
  for (const double d : {1.0, 2.0, 5.0, 12.5}) {
    const u::PowerDensity s =
        incident_density(u::Power(4.0), loss, u::Length(d));
    EXPECT_NEAR(s.value(), 4.0 / (4.0 * kPi * d * d), 1e-12) << "d=" << d;
  }
}

TEST(AiotRectenna, DenserEnvironmentStarvesFaster) {
  const PathLossModel indoor{3.0, u::Length(1.0), 40.0};
  const u::Power tx(2.0);
  const u::Length d(8.0);
  const double free = incident_density(tx, PathLossModel::free_space(), d)
                          .value();
  const double dense = incident_density(tx, indoor, d).value();
  EXPECT_LT(dense, free);
  // At the reference distance the environments agree (sphere anchors both).
  EXPECT_NEAR(
      incident_density(tx, indoor, u::Length(1.0)).value(),
      incident_density(tx, PathLossModel::free_space(), u::Length(1.0))
          .value(),
      1e-12);
}

TEST(AiotRectenna, DensityRejectsNonPositiveTx) {
  EXPECT_THROW(incident_density(u::Power(0.0), PathLossModel::free_space(),
                                u::Length(1.0)),
               std::invalid_argument);
  EXPECT_THROW(incident_density(u::Power(-1.0), PathLossModel::free_space(),
                                u::Length(1.0)),
               std::invalid_argument);
}

TEST(AiotRectenna, EfficiencyZeroAtOrBelowSensitivity) {
  const RectennaModel r = RectennaModel::printed_tag();
  EXPECT_EQ(r.efficiency(r.sensitivity), 0.0);
  EXPECT_EQ(r.efficiency(u::Power(r.sensitivity.value() * 0.5)), 0.0);
  EXPECT_EQ(r.harvested(r.sensitivity).value(), 0.0);
}

TEST(AiotRectenna, EfficiencyPeaksAtSaturation) {
  const RectennaModel r = RectennaModel::printed_tag();
  EXPECT_DOUBLE_EQ(r.efficiency(r.saturation), r.peak_efficiency);
  EXPECT_DOUBLE_EQ(r.efficiency(u::Power(r.saturation.value() * 100.0)),
                   r.peak_efficiency);
}

TEST(AiotRectenna, EfficiencyIsLogLinearBetweenCorners) {
  const RectennaModel r = RectennaModel::printed_tag();
  // Geometric midpoint of [sensitivity, saturation] -> half the peak.
  const double mid =
      std::sqrt(r.sensitivity.value() * r.saturation.value());
  EXPECT_NEAR(r.efficiency(u::Power(mid)), 0.5 * r.peak_efficiency, 1e-12);
}

TEST(AiotRectenna, EfficiencyMonotoneNonDecreasing) {
  const RectennaModel r = RectennaModel::pcb_module();
  double prev = -1.0;
  for (double p = 1e-8; p < 1.0; p *= 1.7) {
    const double e = r.efficiency(u::Power(p));
    EXPECT_GE(e, prev);
    prev = e;
  }
}

TEST(AiotRectenna, HarvestedFromDensityChainsApertureAndCurve) {
  const RectennaModel r = RectennaModel::printed_tag();
  const u::PowerDensity s = u::power_density_from_uw_cm2(50.0);
  const u::Power captured = u::incident_power(s, r.aperture);
  EXPECT_DOUBLE_EQ(r.harvested_from_density(s).value(),
                   r.harvested(captured).value());
  EXPECT_GT(u::as_microwatts(r.harvested_from_density(s)), 0.0);
}

TEST(AiotRectenna, ValidateRejectsNonPhysicalModels) {
  RectennaModel r = RectennaModel::printed_tag();
  r.aperture = u::Area(0.0);
  EXPECT_THROW(r.validate(), std::invalid_argument);
  r = RectennaModel::printed_tag();
  r.saturation = r.sensitivity;  // curve needs a non-empty log span
  EXPECT_THROW(r.validate(), std::invalid_argument);
  r = RectennaModel::printed_tag();
  r.peak_efficiency = 1.5;
  EXPECT_THROW(r.validate(), std::invalid_argument);
  EXPECT_NO_THROW(RectennaModel::printed_tag().validate());
  EXPECT_NO_THROW(RectennaModel::pcb_module().validate());
}

TEST(AiotRectenna, PcbModuleOutharvestsPrintedTag) {
  const u::PowerDensity s = u::power_density_from_uw_cm2(20.0);
  EXPECT_GT(
      RectennaModel::pcb_module().harvested_from_density(s).value(),
      RectennaModel::printed_tag().harvested_from_density(s).value());
}

}  // namespace
