// Wireless-power network: charge-then-burst accounting, RF-shadow honesty,
// gateway-power monotonicity, and pool-size determinism of the study.
#include "ambisim/aiot/wpt_sim.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace u = ambisim::units;
using ambisim::aiot::run_wpt_study;
using ambisim::aiot::simulate_wpt;
using ambisim::aiot::WptSimConfig;
using ambisim::aiot::WptSimResult;
using ambisim::aiot::WptStudyResult;
using ambisim::net::Point;
using ambisim::net::Topology;

namespace {

/// Gateway at the origin plus one tag per distance on the x axis.
WptSimConfig pinned_config(std::vector<double> tag_distances) {
  WptSimConfig cfg;
  std::vector<Point> pts{{0.0, 0.0}};
  for (const double d : tag_distances) pts.push_back({d, 0.0});
  cfg.tag_count = static_cast<int>(tag_distances.size());
  cfg.placement = Topology(std::move(pts));
  return cfg;
}

TEST(AiotWptSim, ValidateRejectsBadConfigs) {
  WptSimConfig cfg;
  cfg.tag_count = 0;
  EXPECT_THROW(simulate_wpt(cfg), std::invalid_argument);
  cfg = WptSimConfig{};
  cfg.gateway_tx_w = 0.0;
  EXPECT_THROW(simulate_wpt(cfg), std::invalid_argument);
  cfg = WptSimConfig{};
  cfg.wake_soc = 0.2;  // wake below cutoff: the MAC could never latch
  cfg.cutoff_soc = 0.25;
  EXPECT_THROW(simulate_wpt(cfg), std::invalid_argument);
  cfg = pinned_config({2.0, 4.0});
  cfg.tag_count = 3;  // placement must hold tag_count + 1 nodes
  EXPECT_THROW(simulate_wpt(cfg), std::invalid_argument);
}

TEST(AiotWptSim, NearTagChargesAndBursts) {
  WptSimConfig cfg = pinned_config({2.0});
  const WptSimResult r = simulate_wpt(cfg);
  const long long slots =
      static_cast<long long>(cfg.duration_s / cfg.report_period_s);
  EXPECT_EQ(r.offered, slots);
  EXPECT_GT(r.bursts, 0);
  EXPECT_LE(r.bursts, r.offered);
  EXPECT_GT(r.delivered_expect, 0.0);
  EXPECT_LE(r.delivered_expect, static_cast<double>(r.bursts));
  EXPECT_DOUBLE_EQ(r.coverage_fraction, 1.0);
  EXPECT_EQ(r.dark_tags, 0);
  EXPECT_GT(r.mean_charge_latency_s, 0.0);
  EXPECT_GT(r.mean_harvest_uw, 0.0);
}

TEST(AiotWptSim, RfShadowTagStaysHonestlyDark) {
  // 200 m from a 2 W gateway the incident power sits below the rectenna
  // sensitivity: zero harvest, so the tag must never wake — Dead-until-
  // charged for the whole horizon, not slowly charging.
  WptSimConfig cfg = pinned_config({200.0});
  const WptSimResult r = simulate_wpt(cfg);
  EXPECT_EQ(r.bursts, 0);
  EXPECT_EQ(r.dark_tags, 1);
  EXPECT_DOUBLE_EQ(r.coverage_fraction, 0.0);
  EXPECT_DOUBLE_EQ(r.availability, 0.0);
  EXPECT_DOUBLE_EQ(r.min_harvest_uw, 0.0);
  // Starting dark and harvesting nothing, the capacitor stays empty.
  ASSERT_EQ(r.final_soc.size(), 2u);
  EXPECT_DOUBLE_EQ(r.final_soc[1], 0.0);
}

TEST(AiotWptSim, GatewayHasNoCapacitor) {
  const WptSimResult r = simulate_wpt(pinned_config({2.0, 5.0}));
  ASSERT_EQ(r.final_soc.size(), 3u);
  EXPECT_DOUBLE_EQ(r.final_soc[0], -1.0);
  for (std::size_t i = 1; i < r.final_soc.size(); ++i) {
    EXPECT_GE(r.final_soc[i], 0.0);
    EXPECT_LE(r.final_soc[i], 1.0);
  }
}

TEST(AiotWptSim, MixedFieldCountsDarkTags) {
  const WptSimResult r = simulate_wpt(pinned_config({2.0, 3.0, 200.0}));
  EXPECT_EQ(r.dark_tags, 1);
  EXPECT_NEAR(r.coverage_fraction, 2.0 / 3.0, 1e-12);
  // Availability averages over tags, so one shadowed tag caps it.
  EXPECT_LT(r.availability, 2.0 / 3.0 + 1e-12);
}

TEST(AiotWptSim, DeliveredFractionMonotoneInGatewayPower) {
  WptSimConfig cfg;
  cfg.tag_count = 24;
  cfg.seed = 42;
  double prev = -1.0;
  for (const double tx : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    cfg.gateway_tx_w = tx;
    const WptSimResult r = simulate_wpt(cfg);
    EXPECT_GT(r.delivered_fraction, prev) << "tx=" << tx;
    prev = r.delivered_fraction;
  }
}

TEST(AiotWptSim, HigherPowerNeverLosesCoverage) {
  WptSimConfig cfg;
  cfg.tag_count = 24;
  cfg.seed = 7;
  cfg.gateway_tx_w = 0.5;
  const WptSimResult lo = simulate_wpt(cfg);
  cfg.gateway_tx_w = 8.0;
  const WptSimResult hi = simulate_wpt(cfg);
  EXPECT_GE(hi.coverage_fraction, lo.coverage_fraction);
  EXPECT_LE(hi.dark_tags, lo.dark_tags);
}

TEST(AiotWptSim, SameSeedSameResult) {
  WptSimConfig cfg;
  cfg.seed = 99;
  ambisim::fault::Digest a, b;
  simulate_wpt(cfg).fold_into(a);
  simulate_wpt(cfg).fold_into(b);
  EXPECT_EQ(a.value(), b.value());
}

TEST(AiotWptSim, StudyChecksumIdenticalAtPools128) {
  WptSimConfig base;
  base.tag_count = 16;
  base.duration_s = 600.0;
  std::uint64_t first = 0;
  for (const int pool : {1, 2, 8}) {
    ambisim::exec::ExecConfig ec;
    ec.threads = static_cast<unsigned>(pool);
    const WptStudyResult s = run_wpt_study(base, 6, 123, ec);
    ASSERT_EQ(s.replications.size(), 6u);
    if (pool == 1)
      first = s.checksum;
    else
      EXPECT_EQ(s.checksum, first) << "pool=" << pool;
  }
  EXPECT_NE(first, 0u);
}

TEST(AiotWptSim, StudyReplicationZeroIsBaseVerbatim) {
  WptSimConfig base;
  base.tag_count = 16;
  base.duration_s = 600.0;
  const WptStudyResult s = run_wpt_study(base, 3, 123);
  ambisim::fault::Digest lone, rep0;
  simulate_wpt(base).fold_into(lone);
  s.replications.front().fold_into(rep0);
  EXPECT_EQ(lone.value(), rep0.value());
  EXPECT_EQ(s.delivered_fraction.count(), 3u);
}

}  // namespace
