#include "ambisim/workload/task_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

using namespace ambisim;
namespace u = ambisim::units;
using namespace ambisim::units::literals;
using workload::Task;
using workload::TaskGraph;

TEST(TaskGraph, AddAndQuery) {
  TaskGraph g("g");
  const int a = g.add_task({"a", 100, 10, 32_bit});
  const int b = g.add_task({"b", 200, 20, 64_bit});
  g.add_edge(a, b, 32_bit);
  EXPECT_EQ(g.task_count(), 2);
  EXPECT_EQ(g.task(a).name, "a");
  EXPECT_EQ(g.successors(a), std::vector<int>{b});
  EXPECT_EQ(g.predecessors(b), std::vector<int>{a});
  EXPECT_TRUE(g.predecessors(a).empty());
  EXPECT_DOUBLE_EQ(g.total_ops(), 300.0);
  EXPECT_DOUBLE_EQ(g.total_traffic().value(), 32.0);
}

TEST(TaskGraph, EdgeValidation) {
  TaskGraph g("g");
  const int a = g.add_task({"a", 1, 0, 0_bit});
  EXPECT_THROW(g.add_edge(a, a, 1_bit), std::invalid_argument);
  EXPECT_THROW(g.add_edge(a, 5, 1_bit), std::out_of_range);
  EXPECT_THROW(g.add_edge(-1, a, 1_bit), std::out_of_range);
  EXPECT_THROW(g.add_edge(a, a, u::Information(-1.0)),
               std::invalid_argument);
  EXPECT_THROW(g.add_task({"bad", -1.0, 0, 0_bit}), std::invalid_argument);
}

TEST(TaskGraph, TopologicalOrderRespectsEdges) {
  TaskGraph g("g");
  const int a = g.add_task({"a", 1, 0, 0_bit});
  const int b = g.add_task({"b", 1, 0, 0_bit});
  const int c = g.add_task({"c", 1, 0, 0_bit});
  g.add_edge(a, c, 1_bit);
  g.add_edge(b, c, 1_bit);
  const auto order = g.topological_order();
  const auto pos = [&](int v) {
    return std::find(order.begin(), order.end(), v) - order.begin();
  };
  EXPECT_LT(pos(a), pos(c));
  EXPECT_LT(pos(b), pos(c));
  EXPECT_TRUE(g.is_acyclic());
}

TEST(TaskGraph, CycleDetected) {
  TaskGraph g("cyclic");
  const int a = g.add_task({"a", 1, 0, 0_bit});
  const int b = g.add_task({"b", 1, 0, 0_bit});
  g.add_edge(a, b, 1_bit);
  g.add_edge(b, a, 1_bit);
  EXPECT_FALSE(g.is_acyclic());
  EXPECT_THROW(g.topological_order(), std::logic_error);
}

TEST(TaskGraph, CriticalPathOnDiamond) {
  TaskGraph g("diamond");
  const int s = g.add_task({"s", 10, 0, 0_bit});
  const int l = g.add_task({"left", 100, 0, 0_bit});
  const int r = g.add_task({"right", 5, 0, 0_bit});
  const int t = g.add_task({"t", 10, 0, 0_bit});
  g.add_edge(s, l, 1_bit);
  g.add_edge(s, r, 1_bit);
  g.add_edge(l, t, 1_bit);
  g.add_edge(r, t, 1_bit);
  EXPECT_DOUBLE_EQ(g.critical_path_ops(), 120.0);  // s -> left -> t
  EXPECT_DOUBLE_EQ(g.total_ops(), 125.0);
  EXPECT_DOUBLE_EQ(g.slack_ops(), 5.0);
}

TEST(TaskGraph, CriticalPathOfChainIsTotal) {
  const auto g = workload::audio_pipeline_graph();
  EXPECT_DOUBLE_EQ(g.critical_path_ops(), g.total_ops());
  EXPECT_DOUBLE_EQ(g.slack_ops(), 0.0);
}

TEST(TaskGraph, PresetsAreWellFormed) {
  for (const auto& g : {workload::audio_pipeline_graph(),
                        workload::sensing_pipeline_graph()}) {
    EXPECT_TRUE(g.is_acyclic()) << g.name();
    EXPECT_GT(g.task_count(), 2) << g.name();
    EXPECT_GT(g.total_ops(), 0.0) << g.name();
    EXPECT_GT(g.period().value(), 0.0) << g.name();
    EXPECT_GT(g.deadline().value(), 0.0) << g.name();
    // Every non-first task is connected.
    for (int t = 1; t < g.task_count(); ++t) {
      EXPECT_FALSE(g.predecessors(t).empty() && g.successors(t).empty())
          << g.name() << " task " << t;
    }
  }
}

TEST(TaskGraph, IndexValidation) {
  TaskGraph g("g");
  g.add_task({"a", 1, 0, 0_bit});
  EXPECT_THROW(g.predecessors(3), std::out_of_range);
  EXPECT_THROW(g.successors(-1), std::out_of_range);
}

// Property: random layered graphs are always acyclic, for many seeds and
// shapes.
struct RandomGraphCase {
  unsigned seed;
  int tasks;
  int layers;
  double p;
};

class RandomGraphs : public ::testing::TestWithParam<RandomGraphCase> {};

TEST_P(RandomGraphs, AlwaysAcyclic) {
  sim::Rng rng(GetParam().seed);
  const auto g = workload::random_task_graph(rng, GetParam().tasks,
                                             GetParam().layers,
                                             GetParam().p);
  EXPECT_TRUE(g.is_acyclic());
  EXPECT_EQ(g.task_count(), GetParam().tasks);
  EXPECT_GE(g.critical_path_ops(), 0.0);
  EXPECT_LE(g.critical_path_ops(), g.total_ops());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RandomGraphs,
    ::testing::Values(RandomGraphCase{1, 10, 3, 0.5},
                      RandomGraphCase{2, 30, 5, 0.3},
                      RandomGraphCase{3, 50, 10, 0.2},
                      RandomGraphCase{4, 5, 5, 1.0},
                      RandomGraphCase{5, 40, 2, 0.8}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "_t" +
             std::to_string(info.param.tasks);
    });

TEST(RandomGraph, ShapeValidation) {
  sim::Rng rng(1);
  EXPECT_THROW(workload::random_task_graph(rng, 0, 1),
               std::invalid_argument);
  EXPECT_THROW(workload::random_task_graph(rng, 5, 10),
               std::invalid_argument);
  EXPECT_THROW(workload::random_task_graph(rng, 5, 2, 1.5),
               std::invalid_argument);
}
