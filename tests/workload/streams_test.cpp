#include "ambisim/workload/streams.hpp"

#include <gtest/gtest.h>

using namespace ambisim;
namespace u = ambisim::units;
using namespace ambisim::units::literals;

TEST(Streams, AudioPlaybackRates) {
  const auto wl = workload::audio_playback(128_kbps);
  // One granule is 1152 samples at 44.1 kHz.
  EXPECT_NEAR(wl.unit_rate.value(), 44100.0 / 1152.0, 1e-9);
  // ~20 MOPS decode, 2003-class figure.
  EXPECT_GT(wl.ops_rate().value(), 5e6);
  EXPECT_LT(wl.ops_rate().value(), 100e6);
  EXPECT_DOUBLE_EQ(wl.stream_rate.value(), 128e3);
}

TEST(Streams, OpsOverIsLinearInTime) {
  const auto wl = workload::sensing(u::Frequency(10.0));
  EXPECT_NEAR(wl.ops_over(10_s), 10.0 * wl.ops_rate().value(), 1e-6);
  EXPECT_DOUBLE_EQ(wl.ops_over(u::Time(0.0)), 0.0);
  EXPECT_THROW(wl.ops_over(u::Time(-1.0)), std::invalid_argument);
}

TEST(Streams, VideoHdHarderThanSd) {
  const auto sd = workload::video_decode_sd();
  const auto hd = workload::video_decode_hd();
  EXPECT_GT(hd.ops_rate().value(), 2.0 * sd.ops_rate().value());
  EXPECT_GT(hd.demand.working_set_bits, sd.demand.working_set_bits);
  EXPECT_GT(hd.stream_rate, sd.stream_rate);
}

TEST(Streams, WorkloadsSpanDeviceClasses) {
  // Sensing is kOPS-scale, audio MOPS-scale, video GOPS-scale: the three
  // orders of magnitude behind the three device classes.
  const auto sense = workload::sensing();
  const auto audio = workload::audio_playback();
  const auto video = workload::video_decode_sd();
  EXPECT_LT(sense.ops_rate().value(), 1e5);
  EXPECT_GT(audio.ops_rate().value(), 1e6);
  EXPECT_LT(audio.ops_rate().value(), 1e8);
  EXPECT_GT(video.ops_rate().value(), 1e9);
}

TEST(Streams, SpeechFrontendFrames) {
  const auto wl = workload::speech_frontend();
  EXPECT_DOUBLE_EQ(wl.unit_rate.value(), 100.0);
  EXPECT_GT(wl.ops_rate().value(), 1e6);
}

TEST(Streams, Validation) {
  EXPECT_THROW(workload::audio_playback(u::BitRate(0.0)),
               std::invalid_argument);
  EXPECT_THROW(workload::sensing(u::Frequency(-1.0)),
               std::invalid_argument);
}
