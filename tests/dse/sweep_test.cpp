#include "ambisim/dse/sweep.hpp"

#include <gtest/gtest.h>

using ambisim::dse::linspace;
using ambisim::dse::logspace;

TEST(Linspace, EndpointsAndSpacing) {
  const auto v = linspace(0.0, 10.0, 6);
  ASSERT_EQ(v.size(), 6u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 10.0);
  for (std::size_t i = 1; i < v.size(); ++i)
    EXPECT_NEAR(v[i] - v[i - 1], 2.0, 1e-12);
}

TEST(Linspace, SinglePointAndErrors) {
  EXPECT_EQ(linspace(3.0, 9.0, 1), std::vector<double>{3.0});
  EXPECT_THROW(linspace(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Linspace, DescendingRangeWorks) {
  const auto v = linspace(10.0, 0.0, 3);
  EXPECT_DOUBLE_EQ(v[0], 10.0);
  EXPECT_DOUBLE_EQ(v[1], 5.0);
  EXPECT_DOUBLE_EQ(v[2], 0.0);
}

TEST(Logspace, ConstantRatio) {
  const auto v = logspace(1.0, 1000.0, 4);
  ASSERT_EQ(v.size(), 4u);
  EXPECT_NEAR(v[0], 1.0, 1e-12);
  EXPECT_NEAR(v[1], 10.0, 1e-9);
  EXPECT_NEAR(v[2], 100.0, 1e-7);
  EXPECT_NEAR(v[3], 1000.0, 1e-6);
}

TEST(Logspace, Validation) {
  EXPECT_THROW(logspace(0.0, 10.0, 3), std::invalid_argument);
  EXPECT_THROW(logspace(1.0, -10.0, 3), std::invalid_argument);
  EXPECT_THROW(logspace(1.0, 10.0, 0), std::invalid_argument);
  EXPECT_EQ(logspace(5.0, 50.0, 1), std::vector<double>{5.0});
}
