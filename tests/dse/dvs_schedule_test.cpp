#include "ambisim/dse/dvs_schedule.hpp"

#include <gtest/gtest.h>

using namespace ambisim;
namespace u = ambisim::units;
using dse::schedule_with_dvs;

namespace {

const tech::TechnologyNode& n130() {
  return tech::TechnologyLibrary::standard().node("130nm");
}

constexpr double kGates = 40e3;
constexpr double kIdle = 360e3;

u::Time min_latency(const workload::TaskGraph& g, const tech::DvsModel& m) {
  double cycles = 0.0;
  for (int t = 0; t < g.task_count(); ++t) cycles += g.task(t).ops;
  return u::Time(cycles / m.fastest().frequency.value());
}

}  // namespace

TEST(DvsSchedule, NoSlackNoSavings) {
  const tech::DvsModel dvs(n130(), 16);
  const auto g = workload::audio_pipeline_graph();
  const auto r = schedule_with_dvs(g, dvs, min_latency(g, dvs), kGates,
                                   kIdle);
  EXPECT_TRUE(r.feasible);
  EXPECT_NEAR(r.savings, 0.0, 1e-9);
  EXPECT_NEAR(r.energy_dvs.value(), r.energy_nominal.value(), 1e-15);
}

TEST(DvsSchedule, SavingsMonotoneInSlack) {
  const tech::DvsModel dvs(n130(), 16);
  const auto g = workload::audio_pipeline_graph();
  const auto t0 = min_latency(g, dvs);
  double prev = -1.0;
  for (double slack : {1.0, 1.5, 2.0, 3.0, 5.0}) {
    const auto r = schedule_with_dvs(g, dvs, t0 * slack, kGates, kIdle);
    ASSERT_TRUE(r.feasible);
    EXPECT_GE(r.savings, prev - 1e-12) << "slack " << slack;
    prev = r.savings;
  }
  EXPECT_GT(prev, 0.3);  // large slack -> large savings
}

TEST(DvsSchedule, SavingsSaturateAtVddMin) {
  const tech::DvsModel dvs(n130(), 16);
  const auto g = workload::audio_pipeline_graph();
  const auto t0 = min_latency(g, dvs);
  const auto r10 = schedule_with_dvs(g, dvs, t0 * 10.0, kGates, kIdle);
  const auto r20 = schedule_with_dvs(g, dvs, t0 * 20.0, kGates, kIdle);
  EXPECT_NEAR(r10.savings, r20.savings, 1e-9);
  for (const auto& p : r10.points) {
    EXPECT_DOUBLE_EQ(p.voltage.value(), n130().vdd_min.value());
  }
}

TEST(DvsSchedule, InfeasibleDeadlineFlagged) {
  const tech::DvsModel dvs(n130(), 16);
  const auto g = workload::audio_pipeline_graph();
  const auto r = schedule_with_dvs(g, dvs, min_latency(g, dvs) * 0.5,
                                   kGates, kIdle);
  EXPECT_FALSE(r.feasible);
  EXPECT_GT(r.makespan, min_latency(g, dvs) * 0.5);
}

TEST(DvsSchedule, MakespanWithinDeadline) {
  const tech::DvsModel dvs(n130(), 16);
  const auto g = workload::audio_pipeline_graph();
  for (double slack : {1.0, 1.7, 2.3, 4.0}) {
    const auto deadline = min_latency(g, dvs) * slack;
    const auto r = schedule_with_dvs(g, dvs, deadline, kGates, kIdle);
    ASSERT_TRUE(r.feasible);
    EXPECT_LE(r.makespan.value(), deadline.value() * (1.0 + 1e-9));
  }
}

TEST(DvsSchedule, PointsWithinTechnologyRange) {
  const tech::DvsModel dvs(n130(), 16);
  const auto g = workload::sensing_pipeline_graph();
  const auto r = schedule_with_dvs(g, dvs, u::Time(0.5), 5e3, 3e4);
  ASSERT_TRUE(r.feasible);
  ASSERT_EQ(r.points.size(), static_cast<std::size_t>(g.task_count()));
  for (const auto& p : r.points) {
    EXPECT_GE(p.voltage.value(), n130().vdd_min.value() - 1e-12);
    EXPECT_LE(p.voltage.value(), n130().vdd_nominal.value() + 1e-12);
  }
}

TEST(DvsSchedule, Validation) {
  const tech::DvsModel dvs(n130(), 16);
  const auto g = workload::audio_pipeline_graph();
  EXPECT_THROW(schedule_with_dvs(g, dvs, u::Time(0.0), kGates, kIdle),
               std::invalid_argument);
  EXPECT_THROW(schedule_with_dvs(g, dvs, u::Time(1.0), kGates, kIdle, 0.0),
               std::invalid_argument);
}
