#include "ambisim/dse/pareto.hpp"

#include <gtest/gtest.h>

#include "ambisim/sim/random.hpp"

using ambisim::dse::dominates;
using ambisim::dse::is_pareto_front;
using ambisim::dse::pareto_front;
using ambisim::dse::ParetoPoint;

TEST(Pareto, DominanceDefinition) {
  const ParetoPoint a{1.0, 10.0, "a"};
  const ParetoPoint b{2.0, 5.0, "b"};
  const ParetoPoint c{1.0, 10.0, "c"};  // equal to a
  const ParetoPoint d{0.5, 12.0, "d"};
  EXPECT_TRUE(dominates(a, b));
  EXPECT_FALSE(dominates(b, a));
  EXPECT_FALSE(dominates(a, c));  // equal points do not dominate
  EXPECT_TRUE(dominates(d, a));
}

TEST(Pareto, FrontRemovesDominated) {
  const std::vector<ParetoPoint> pts{
      {1.0, 1.0, "p1"}, {2.0, 3.0, "p2"}, {3.0, 2.0, "dominated"},
      {4.0, 4.0, "p4"}, {5.0, 3.5, "dominated2"}};
  const auto front = pareto_front(pts);
  ASSERT_EQ(front.size(), 3u);
  EXPECT_EQ(front[0].label, "p1");
  EXPECT_EQ(front[1].label, "p2");
  EXPECT_EQ(front[2].label, "p4");
  EXPECT_TRUE(is_pareto_front(front));
}

TEST(Pareto, FrontIsSortedByCost) {
  const std::vector<ParetoPoint> pts{
      {5.0, 10.0, ""}, {1.0, 2.0, ""}, {3.0, 7.0, ""}};
  const auto front = pareto_front(pts);
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GE(front[i].cost, front[i - 1].cost);
    EXPECT_GT(front[i].value, front[i - 1].value);
  }
}

TEST(Pareto, SingleAndEmptyInput) {
  EXPECT_TRUE(pareto_front({}).empty());
  const auto f = pareto_front({{1.0, 1.0, "only"}});
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].label, "only");
}

TEST(Pareto, DuplicateCostKeepsBestValue) {
  const auto f = pareto_front({{1.0, 5.0, "worse"}, {1.0, 9.0, "better"}});
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].label, "better");
}

TEST(Pareto, IsParetoFrontDetectsViolations) {
  EXPECT_TRUE(is_pareto_front({{1.0, 1.0, ""}, {2.0, 2.0, ""}}));
  EXPECT_FALSE(is_pareto_front({{1.0, 5.0, ""}, {2.0, 2.0, ""}}));
}

// Properties on random clouds.
class ParetoRandom : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParetoRandom, FrontIsValidAndIdempotent) {
  ambisim::sim::Rng rng(GetParam());
  std::vector<ParetoPoint> pts;
  for (int i = 0; i < 300; ++i) {
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0), ""});
  }
  const auto front = pareto_front(pts);
  ASSERT_FALSE(front.empty());
  EXPECT_TRUE(is_pareto_front(front));
  // Idempotence: the front of the front is itself.
  const auto again = pareto_front(front);
  EXPECT_EQ(again.size(), front.size());
  // Every input point is dominated by or equal to some front member.
  for (const auto& p : pts) {
    bool covered = false;
    for (const auto& f : front) {
      if (dominates(f, p) || (f.cost == p.cost && f.value == p.value)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParetoRandom,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));
