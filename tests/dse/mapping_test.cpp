#include "ambisim/dse/mapping.hpp"

#include <gtest/gtest.h>

#include "ambisim/radio/transceiver.hpp"

using namespace ambisim;
using dse::ExecutionTarget;
using dse::Mapping;
using dse::MappingOptimizer;
using dse::MappingProblem;
namespace u = ambisim::units;
using namespace ambisim::units::literals;

namespace {

const tech::TechnologyNode& n130() {
  return tech::TechnologyLibrary::standard().node("130nm");
}

MappingProblem three_tier_problem() {
  workload::TaskGraph g("pipe");
  const int a = g.add_task({"light", 1e4, 0, 128_bit});
  const int b = g.add_task({"medium", 1e6, 0, 512_bit});
  const int c = g.add_task({"heavy", 5e7, 0, 1024_bit});
  g.add_edge(a, b, 128_bit);
  g.add_edge(b, c, 512_bit);

  MappingProblem p{std::move(g), 1_s, {}};
  const radio::RadioModel ulp(radio::ulp_radio());
  const radio::RadioModel bt(radio::bluetooth_like());
  const radio::RadioModel wlan(radio::wlan_80211b());
  p.targets.push_back(
      {"mcu",
       arch::ProcessorModel::at_max_clock(arch::microcontroller_core(),
                                          n130(), n130().vdd_min),
       core::DeviceClass::MicroWatt,
       u::EnergyPerBit(ulp.energy_per_bit_tx().value() +
                       ulp.energy_per_bit_rx().value()),
       1.0, 10.0});  // 8-bit MCU: 10 native ops per abstract op
  p.targets.push_back(
      {"dsp",
       arch::ProcessorModel::at_max_clock(arch::dsp_core(), n130(),
                                          u::Voltage(1.0)),
       core::DeviceClass::MilliWatt,
       u::EnergyPerBit(bt.energy_per_bit_tx().value() +
                       bt.energy_per_bit_rx().value()),
       1.0});
  p.targets.push_back(
      {"vliw",
       arch::ProcessorModel::at_max_clock(arch::vliw_core(), n130(),
                                          n130().vdd_nominal),
       core::DeviceClass::Watt,
       u::EnergyPerBit(wlan.energy_per_bit_tx().value() +
                       wlan.energy_per_bit_rx().value()),
       1.0});
  return p;
}

}  // namespace

TEST(Mapping, EvaluateComputesComponents) {
  MappingOptimizer opt(three_tier_problem());
  const Mapping m = opt.evaluate({0, 1, 2});
  EXPECT_TRUE(m.feasible);
  EXPECT_GT(m.compute_energy.value(), 0.0);
  EXPECT_GT(m.comm_energy.value(), 0.0);  // two crossing edges
  EXPECT_NEAR(m.energy_per_period.value(),
              (m.compute_energy + m.comm_energy).value(), 1e-18);
  ASSERT_EQ(m.utilization.size(), 3u);
}

TEST(Mapping, SameTargetHasNoCommCost) {
  MappingOptimizer opt(three_tier_problem());
  const Mapping m = opt.all_on(2);
  EXPECT_DOUBLE_EQ(m.comm_energy.value(), 0.0);
  EXPECT_TRUE(m.feasible);
}

TEST(Mapping, EvaluateValidatesAssignment) {
  MappingOptimizer opt(three_tier_problem());
  EXPECT_THROW(opt.evaluate({0, 1}), std::invalid_argument);
  EXPECT_THROW(opt.evaluate({0, 1, 7}), std::out_of_range);
  EXPECT_THROW(opt.all_on(9), std::out_of_range);
}

TEST(Mapping, InfeasibleWhenTargetOverloaded) {
  auto prob = three_tier_problem();
  prob.period = u::Time(1e-4);  // 0.1 ms period: the MCU can't keep up
  MappingOptimizer opt(prob);
  const Mapping m = opt.all_on(0);
  EXPECT_FALSE(m.feasible);
  EXPECT_GT(m.utilization[0], 1.0);
}

TEST(Mapping, GreedyIsFeasibleAndBeatsWorstSingleTarget) {
  MappingOptimizer opt(three_tier_problem());
  const Mapping g = opt.greedy();
  EXPECT_TRUE(g.feasible);
  // Greedy should never lose to putting everything on the most expensive
  // target.
  double worst = 0.0;
  for (int t = 0; t < 3; ++t) {
    const auto m = opt.all_on(t);
    if (m.feasible) worst = std::max(worst, m.energy_per_period.value());
  }
  EXPECT_LE(g.energy_per_period.value(), worst * (1.0 + 1e-12));
}

TEST(Mapping, ConstructionValidation) {
  auto prob = three_tier_problem();
  prob.targets.clear();
  EXPECT_THROW(MappingOptimizer{prob}, std::invalid_argument);
  prob = three_tier_problem();
  prob.period = u::Time(0.0);
  EXPECT_THROW(MappingOptimizer{prob}, std::invalid_argument);
}

TEST(Mapping, AnnealRespectsIterationValidation) {
  MappingOptimizer opt(three_tier_problem());
  sim::Rng rng(1);
  EXPECT_THROW(opt.anneal(rng, 0), std::invalid_argument);
}

TEST(Mapping, HeavyComputeLandsOnEfficientTarget) {
  MappingOptimizer opt(three_tier_problem());
  sim::Rng rng(3);
  const Mapping best = opt.anneal(rng, 10'000);
  ASSERT_TRUE(best.feasible);
  // The 5e7-op task cannot stay on the MCU (capacity) and the VLIW has the
  // lowest energy/op at scale — check it is NOT on the mcu.
  EXPECT_NE(best.assignment[2], 0);
}

// Property: annealing never returns something worse than greedy, and the
// result is always feasible when greedy is, across seeds.
class AnnealSeeds : public ::testing::TestWithParam<unsigned> {};

TEST_P(AnnealSeeds, AnnealAtLeastAsGoodAsGreedy) {
  MappingOptimizer opt(three_tier_problem());
  const Mapping g = opt.greedy();
  sim::Rng rng(GetParam());
  const Mapping a = opt.anneal(rng, 5'000);
  ASSERT_TRUE(g.feasible);
  ASSERT_TRUE(a.feasible);
  EXPECT_LE(a.energy_per_period.value(),
            g.energy_per_period.value() * (1.0 + 1e-12));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnnealSeeds,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));
