// Pinning and ISA-scale behaviour of the mapper.
#include <gtest/gtest.h>

#include "ambisim/dse/mapping.hpp"
#include "ambisim/radio/transceiver.hpp"

using namespace ambisim;
using dse::Mapping;
using dse::MappingOptimizer;
using dse::MappingProblem;
namespace u = ambisim::units;
using namespace ambisim::units::literals;

namespace {

const tech::TechnologyNode& n130() {
  return tech::TechnologyLibrary::standard().node("130nm");
}

MappingProblem pinned_problem() {
  workload::TaskGraph g("pinned");
  const int sense = g.add_task({"sense", 1e3, 0, 64_bit});
  const int heavy = g.add_task({"heavy", 1e7, 0, 64_bit});
  const int act = g.add_task({"actuate", 1e3, 0, 16_bit});
  g.add_edge(sense, heavy, 64_bit);
  g.add_edge(heavy, act, 64_bit);

  MappingProblem p{std::move(g), 1_s, {}, {}};
  const radio::RadioModel ulp(radio::ulp_radio());
  p.targets.push_back(
      {"mcu",
       arch::ProcessorModel::at_max_clock(arch::microcontroller_core(),
                                          n130(), n130().vdd_min),
       core::DeviceClass::MicroWatt,
       u::EnergyPerBit(ulp.energy_per_bit_tx().value() * 2.0), 1.0, 10.0});
  p.targets.push_back(
      {"server",
       arch::ProcessorModel::at_max_clock(arch::vliw_core(), n130(),
                                          n130().vdd_nominal),
       core::DeviceClass::Watt, u::EnergyPerBit(5e-8), 1.0, 1.0});
  p.pinned.push_back({sense, 0});
  p.pinned.push_back({act, 0});
  return p;
}

}  // namespace

TEST(MappingPins, GreedyHonorsPins) {
  MappingOptimizer opt(pinned_problem());
  const Mapping m = opt.greedy();
  ASSERT_TRUE(m.feasible);
  EXPECT_EQ(m.assignment[0], 0);
  EXPECT_EQ(m.assignment[2], 0);
}

TEST(MappingPins, AnnealHonorsPins) {
  MappingOptimizer opt(pinned_problem());
  sim::Rng rng(5);
  const Mapping m = opt.anneal(rng, 5'000);
  ASSERT_TRUE(m.feasible);
  EXPECT_EQ(m.assignment[0], 0);
  EXPECT_EQ(m.assignment[2], 0);
}

TEST(MappingPins, EvaluateFlagsPinViolation) {
  MappingOptimizer opt(pinned_problem());
  const Mapping ok = opt.evaluate({0, 1, 0});
  EXPECT_TRUE(ok.feasible);
  const Mapping bad = opt.evaluate({1, 1, 0});  // sense off its pin
  EXPECT_FALSE(bad.feasible);
}

TEST(MappingPins, PinValidation) {
  auto p = pinned_problem();
  p.pinned.push_back({99, 0});
  EXPECT_THROW(MappingOptimizer{p}, std::out_of_range);
  p = pinned_problem();
  p.pinned.push_back({0, 99});
  EXPECT_THROW(MappingOptimizer{p}, std::out_of_range);
  p = pinned_problem();
  p.targets[0].ops_scale = 0.0;
  EXPECT_THROW(MappingOptimizer{p}, std::invalid_argument);
}

TEST(MappingPins, OpsScaleRaisesUtilizationAndEnergy) {
  auto low = pinned_problem();
  low.pinned.clear();
  auto high = pinned_problem();
  high.pinned.clear();
  high.targets[0].ops_scale = 20.0;
  const Mapping ml = MappingOptimizer(low).all_on(0);
  const Mapping mh = MappingOptimizer(high).all_on(0);
  EXPECT_NEAR(mh.utilization[0], 2.0 * ml.utilization[0], 1e-9);
  EXPECT_NEAR(mh.compute_energy.value(), 2.0 * ml.compute_energy.value(),
              mh.compute_energy.value() * 1e-9);
}

TEST(MappingPins, AllPinnedStillReturnsGreedy) {
  auto p = pinned_problem();
  p.pinned = {{0, 0}, {1, 1}, {2, 0}};
  MappingOptimizer opt(p);
  sim::Rng rng(1);
  const Mapping m = opt.anneal(rng, 100);
  EXPECT_TRUE(m.feasible);
  EXPECT_EQ(m.assignment, (std::vector<int>{0, 1, 0}));
}
