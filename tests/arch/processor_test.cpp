#include "ambisim/arch/processor.hpp"

#include <gtest/gtest.h>

using namespace ambisim;
namespace u = ambisim::units;
using namespace ambisim::units::literals;
using arch::CoreParams;
using arch::ProcessorModel;

namespace {
const tech::TechnologyNode& n130() {
  return tech::TechnologyLibrary::standard().node("130nm");
}
}  // namespace

TEST(Processor, ThroughputIsClockTimesIpc) {
  const auto cpu =
      ProcessorModel::at_max_clock(arch::dsp_core(), n130(), 1.3_V);
  EXPECT_DOUBLE_EQ(cpu.throughput().value(),
                   cpu.clock().value() * arch::dsp_core().ops_per_cycle);
}

TEST(Processor, OverclockRejected) {
  const auto fmax =
      tech::max_frequency(n130(), 1.3_V, arch::risc_core().logic_depth);
  EXPECT_THROW(ProcessorModel(arch::risc_core(), n130(), 1.3_V, fmax * 1.1),
               std::domain_error);
  EXPECT_NO_THROW(ProcessorModel(arch::risc_core(), n130(), 1.3_V, fmax));
  EXPECT_THROW(
      ProcessorModel(arch::risc_core(), n130(), 1.3_V, u::Frequency(0.0)),
      std::invalid_argument);
}

TEST(Processor, BadCoreParamsRejected) {
  CoreParams p = arch::risc_core();
  p.ops_per_cycle = 0.0;
  EXPECT_THROW(ProcessorModel::at_max_clock(p, n130(), 1.3_V),
               std::invalid_argument);
  p = arch::risc_core();
  p.total_gates = -1.0;
  EXPECT_THROW(ProcessorModel::at_max_clock(p, n130(), 1.3_V),
               std::invalid_argument);
}

TEST(Processor, PowerMonotoneInUtilization) {
  const auto cpu =
      ProcessorModel::at_max_clock(arch::risc_core(), n130(), 1.3_V);
  EXPECT_LT(cpu.power(0.0), cpu.power(0.5));
  EXPECT_LT(cpu.power(0.5), cpu.power(1.0));
  // Idle power is exactly the leakage.
  EXPECT_DOUBLE_EQ(cpu.power(0.0).value(), cpu.leakage_power().value());
  EXPECT_DOUBLE_EQ(cpu.sleep_power().value(), cpu.leakage_power().value());
  EXPECT_THROW((void)cpu.power(1.5), std::invalid_argument);
}

TEST(Processor, EnergyForMatchesPowerTimesTime) {
  const auto cpu =
      ProcessorModel::at_max_clock(arch::dsp_core(), n130(), 1.3_V);
  const double ops = 1e6;
  EXPECT_NEAR(cpu.energy_for(ops).value(),
              cpu.power(1.0).value() * cpu.time_for(ops).value(), 1e-15);
  EXPECT_NEAR(cpu.energy_per_op().value(),
              cpu.energy_for(ops).value() / ops, 1e-18);
  EXPECT_THROW((void)cpu.time_for(-1.0), std::invalid_argument);
}

TEST(Processor, LowerVoltageReducesEnergyPerOp) {
  const auto hi =
      ProcessorModel::at_max_clock(arch::dsp_core(), n130(), 1.3_V);
  const auto lo =
      ProcessorModel::at_max_clock(arch::dsp_core(), n130(), 0.8_V);
  EXPECT_LT(lo.energy_per_op(), hi.energy_per_op());
  EXPECT_LT(lo.throughput(), hi.throughput());
}

TEST(Processor, WithOperatingPointRederives) {
  const auto cpu =
      ProcessorModel::at_max_clock(arch::dsp_core(), n130(), 1.3_V);
  const auto slow = cpu.with_operating_point(0.9_V, 100_MHz);
  EXPECT_DOUBLE_EQ(slow.voltage().value(), 0.9);
  EXPECT_DOUBLE_EQ(slow.clock().value(), 100e6);
  EXPECT_EQ(slow.params().name, cpu.params().name);
}

TEST(Processor, AcceleratorIsMoreEfficientThanRisc) {
  // The flexibility-efficiency gap: a hardwired block spends far less
  // energy per operation than a general-purpose core.
  const auto risc =
      ProcessorModel::at_max_clock(arch::risc_core(), n130(), 1.3_V);
  const auto accel = ProcessorModel::at_max_clock(
      arch::accelerator_core("dct"), n130(), 1.3_V);
  EXPECT_GT(risc.energy_per_op().value(),
            20.0 * accel.energy_per_op().value());
}

TEST(Processor, StyleNames) {
  EXPECT_EQ(to_string(arch::CoreStyle::Dsp), "dsp");
  EXPECT_EQ(to_string(arch::CoreStyle::Vliw), "vliw");
  EXPECT_EQ(to_string(arch::CoreStyle::Microcontroller), "microcontroller");
  EXPECT_EQ(to_string(arch::CoreStyle::GeneralPurpose), "general-purpose");
  EXPECT_EQ(to_string(arch::CoreStyle::Accelerator), "accelerator");
}

TEST(Processor, RiscEnergyPerOpIsArm9Class) {
  // Calibration check: ~100-500 pJ per op at 130 nm nominal.
  const auto risc =
      ProcessorModel::at_max_clock(arch::risc_core(), n130(), 1.3_V);
  EXPECT_GT(risc.energy_per_op().value(), 50e-12);
  EXPECT_LT(risc.energy_per_op().value(), 1e-9);
}

// Property: every preset core at every technology node produces a
// consistent model.
struct CoreCase {
  const char* node;
  CoreParams params;
};

class CorePresets : public ::testing::TestWithParam<CoreCase> {};

TEST_P(CorePresets, ModelIsConsistent) {
  const auto& n =
      tech::TechnologyLibrary::standard().node(GetParam().node);
  const auto cpu =
      ProcessorModel::at_max_clock(GetParam().params, n, n.vdd_nominal);
  EXPECT_GT(cpu.throughput().value(), 0.0);
  EXPECT_GT(cpu.dynamic_power(1.0).value(), 0.0);
  EXPECT_GT(cpu.leakage_power().value(), 0.0);
  EXPECT_GT(cpu.dynamic_power(1.0), cpu.dynamic_power(0.1));
  EXPECT_NEAR(cpu.power(1.0).value(),
              (cpu.dynamic_power(1.0) + cpu.leakage_power()).value(), 1e-15);
}

INSTANTIATE_TEST_SUITE_P(
    PresetsByNode, CorePresets,
    ::testing::Values(CoreCase{"350nm", arch::microcontroller_core()},
                      CoreCase{"180nm", arch::microcontroller_core()},
                      CoreCase{"130nm", arch::risc_core()},
                      CoreCase{"90nm", arch::risc_core()},
                      CoreCase{"130nm", arch::dsp_core()},
                      CoreCase{"90nm", arch::vliw_core()},
                      CoreCase{"65nm", arch::vliw_core()},
                      CoreCase{"130nm", arch::accelerator_core("x")}),
    [](const auto& info) {
      return std::string(info.param.node) + "_" +
             [](std::string s) {
               for (auto& c : s)
                 if (!isalnum(static_cast<unsigned char>(c))) c = '_';
               return s;
             }(info.param.params.name);
    });
