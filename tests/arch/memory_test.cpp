#include "ambisim/arch/memory.hpp"

#include <gtest/gtest.h>

using namespace ambisim;
namespace u = ambisim::units;
using namespace ambisim::units::literals;
using arch::AccessProfile;
using arch::CacheLevelSpec;
using arch::MemoryHierarchy;

namespace {

const tech::TechnologyNode& n130() {
  return tech::TechnologyLibrary::standard().node("130nm");
}

MemoryHierarchy two_level(bool offchip = true) {
  return MemoryHierarchy(n130(), 1.3_V,
                         {{"L1", 32.0 * 1024 * 8, 32.0, 2_ns},
                          {"L2", 256.0 * 1024 * 8, 64.0, 8_ns}},
                         offchip);
}

}  // namespace

TEST(MemoryHierarchy, HitRateOneWhenWorkingSetFits) {
  const auto m = two_level();
  EXPECT_DOUBLE_EQ(m.hit_rate(0, 16.0 * 1024 * 8), 1.0);
  EXPECT_DOUBLE_EQ(m.hit_rate(1, 128.0 * 1024 * 8), 1.0);
}

TEST(MemoryHierarchy, HitRateFallsWithWorkingSet) {
  const auto m = two_level();
  const double h1 = m.hit_rate(0, 64.0 * 1024 * 8);
  const double h2 = m.hit_rate(0, 256.0 * 1024 * 8);
  EXPECT_GT(h1, h2);
  EXPECT_GT(h2, 0.0);
  EXPECT_LT(h1, 1.0);
}

TEST(MemoryHierarchy, SqrtRuleAtFourXWorkingSet) {
  const auto m = two_level();
  // capacity/ws = 1/4, theta = 0.5 -> hit rate 0.5.
  EXPECT_NEAR(m.hit_rate(0, 4.0 * 32.0 * 1024 * 8, 0.5), 0.5, 1e-12);
}

TEST(MemoryHierarchy, Validation) {
  EXPECT_THROW(MemoryHierarchy(n130(), 1.3_V, {}, false),
               std::invalid_argument);
  // Levels must grow outward.
  EXPECT_THROW(MemoryHierarchy(n130(), 1.3_V,
                               {{"L1", 1e6, 32.0, 2_ns},
                                {"L2", 1e5, 32.0, 4_ns}},
                               true),
               std::invalid_argument);
  const auto m = two_level();
  EXPECT_THROW(m.hit_rate(5, 1e6), std::out_of_range);
  EXPECT_THROW(m.hit_rate(0, -1.0), std::invalid_argument);
  EXPECT_THROW(m.hit_rate(0, 1e6, 1.5), std::invalid_argument);
}

TEST(MemoryHierarchy, StatsConserveAccesses) {
  const auto m = two_level();
  const AccessProfile prof{1e6, 512.0 * 1024 * 8, 0.5};
  const auto stats = m.simulate(prof);
  ASSERT_EQ(stats.hits_per_level.size(), 2u);
  const double accounted = stats.hits_per_level[0] +
                           stats.hits_per_level[1] +
                           stats.offchip_accesses;
  EXPECT_NEAR(accounted, prof.accesses, prof.accesses * 1e-9);
}

TEST(MemoryHierarchy, LargerWorkingSetCostsMore) {
  const auto m = two_level();
  const auto small = m.simulate({1e6, 16.0 * 1024 * 8, 0.5});
  const auto large = m.simulate({1e6, 4.0 * 1024 * 1024 * 8, 0.5});
  EXPECT_LT(small.energy, large.energy);
  EXPECT_LT(small.total_latency, large.total_latency);
  EXPECT_EQ(small.offchip_accesses, 0.0);
  EXPECT_GT(large.offchip_accesses, 0.0);
}

TEST(MemoryHierarchy, FittingWorkingSetNeverGoesOffchip) {
  const auto m = two_level();
  const auto stats = m.simulate({1e5, 8.0 * 1024 * 8, 0.5});
  EXPECT_DOUBLE_EQ(stats.offchip_accesses, 0.0);
  EXPECT_DOUBLE_EQ(stats.hits_per_level[0], 1e5);
}

TEST(MemoryHierarchy, EnergyLinearInAccessCount) {
  const auto m = two_level();
  const auto one = m.simulate({1e5, 1e6, 0.5});
  const auto two = m.simulate({2e5, 1e6, 0.5});
  EXPECT_NEAR(two.energy.value(), 2.0 * one.energy.value(),
              one.energy.value() * 1e-9);
}

TEST(MemoryHierarchy, EnergyPerAccessHelper) {
  const auto m = two_level();
  const auto stats = m.simulate({1e5, 1e6, 0.5});
  EXPECT_NEAR(stats.energy_per_access(1e5).value(),
              stats.energy.value() / 1e5, 1e-18);
  EXPECT_DOUBLE_EQ(stats.energy_per_access(0.0).value(), 0.0);
}

TEST(MemoryHierarchy, LeakageSumsOverLevels) {
  const auto m = two_level();
  const auto leak = m.leakage();
  const auto l1 = tech::SramModel::leakage(n130(), 1.3_V, 32.0 * 1024 * 8);
  const auto l2 = tech::SramModel::leakage(n130(), 1.3_V, 256.0 * 1024 * 8);
  EXPECT_NEAR(leak.value(), (l1 + l2).value(), 1e-15);
}

TEST(MemoryHierarchy, NegativeAccessesRejected) {
  const auto m = two_level();
  EXPECT_THROW(m.simulate({-1.0, 1e6, 0.5}), std::invalid_argument);
}

// Property: growing the L1 monotonically reduces off-chip traffic.
class CacheSizing : public ::testing::TestWithParam<double> {};

TEST_P(CacheSizing, BiggerCacheLessOffchipTraffic) {
  const double l1_kib = GetParam();
  const MemoryHierarchy small(
      n130(), 1.3_V, {{"L1", l1_kib * 1024 * 8, 32.0, 2_ns}}, true);
  const MemoryHierarchy big(
      n130(), 1.3_V, {{"L1", 2.0 * l1_kib * 1024 * 8, 32.0, 2_ns}}, true);
  const AccessProfile prof{1e6, 8.0 * 1024 * 1024 * 8, 0.5};
  EXPECT_GT(small.simulate(prof).offchip_accesses,
            big.simulate(prof).offchip_accesses);
}

INSTANTIATE_TEST_SUITE_P(L1Sizes, CacheSizing,
                         ::testing::Values(4.0, 8.0, 16.0, 32.0, 64.0));
