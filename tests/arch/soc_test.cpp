#include "ambisim/arch/soc.hpp"

#include <gtest/gtest.h>

#include "ambisim/workload/streams.hpp"

using namespace ambisim;
namespace u = ambisim::units;
using namespace ambisim::units::literals;
using arch::ComputeDemand;
using arch::SocModel;

namespace {

const tech::TechnologyNode& n130() {
  return tech::TechnologyLibrary::standard().node("130nm");
}

SocModel media_soc() {
  SocModel s("test-soc", n130(), 1.3_V);
  s.add_core(arch::risc_core()).add_core(arch::dsp_core());
  s.set_memory({{"L1", 32.0 * 1024 * 8, 32.0, 2_ns}}, true);
  s.set_bus(5.0, 64.0);
  return s;
}

}  // namespace

TEST(Soc, CapacitySumsCores) {
  const auto s = media_soc();
  const auto risc = arch::ProcessorModel::at_max_clock(arch::risc_core(),
                                                       n130(), 1.3_V);
  const auto dsp =
      arch::ProcessorModel::at_max_clock(arch::dsp_core(), n130(), 1.3_V);
  EXPECT_NEAR(s.compute_capacity().value(),
              (risc.throughput() + dsp.throughput()).value(), 1.0);
  EXPECT_DOUBLE_EQ(s.total_gates(), arch::risc_core().total_gates +
                                        arch::dsp_core().total_gates);
}

TEST(Soc, EvaluateFeasibilityMatchesMaxRate) {
  const auto s = media_soc();
  const ComputeDemand d{1e6, 1e5, 1e6, 1e4};
  const auto fmax = s.max_rate(d);
  EXPECT_TRUE(s.evaluate(d, fmax * 0.99).feasible);
  EXPECT_FALSE(s.evaluate(d, fmax * 1.01).feasible);
}

TEST(Soc, BreakdownSumsToTotalPower) {
  const auto s = media_soc();
  const ComputeDemand d{1e6, 1e5, 1e6, 1e4};
  const auto ev = s.evaluate(d, u::Frequency(100.0));
  u::Power sum{0.0};
  for (const auto& [name, p] : ev.breakdown) sum += p;
  EXPECT_NEAR(sum.value(), ev.power.value(), 1e-12);
  EXPECT_EQ(ev.breakdown.size(), 3u);  // cores, memory, interconnect
}

TEST(Soc, EnergyPerUnitIsPowerOverRate) {
  const auto s = media_soc();
  const ComputeDemand d{1e6, 0.0, 0.0, 0.0};
  const auto ev = s.evaluate(d, u::Frequency(50.0));
  EXPECT_NEAR(ev.energy_per_unit.value(), ev.power.value() / 50.0, 1e-12);
}

TEST(Soc, HigherRateMorePower) {
  const auto s = media_soc();
  const ComputeDemand d{1e6, 1e5, 1e6, 1e4};
  const auto lo = s.evaluate(d, u::Frequency(10.0));
  const auto hi = s.evaluate(d, u::Frequency(100.0));
  EXPECT_LT(lo.power, hi.power);
  EXPECT_LT(lo.compute_utilization, hi.compute_utilization);
}

TEST(Soc, ZeroRateDrawsIdlePowerOnly) {
  const auto s = media_soc();
  const ComputeDemand d{1e6, 1e5, 1e6, 1e4};
  const auto ev = s.evaluate(d, u::Frequency(0.0));
  EXPECT_TRUE(ev.feasible);
  // Leakage of cores + memory still present.
  EXPECT_GT(ev.power.value(), 0.0);
  EXPECT_DOUBLE_EQ(ev.compute_utilization, 0.0);
}

TEST(Soc, BusLimitsRate) {
  SocModel s("bus-bound", n130(), 1.3_V);
  s.add_core(arch::vliw_core());
  s.set_bus(5.0, 8.0);  // narrow bus
  const ComputeDemand d{1.0, 0.0, 0.0, 1e6};  // almost pure data movement
  const auto fmax = s.max_rate(d);
  const auto bus_bound = s.evaluate(d, fmax * 1.5);
  EXPECT_FALSE(bus_bound.feasible);
  EXPECT_GT(bus_bound.bus_utilization, 1.0);
}

TEST(Soc, ErrorsOnMisuse) {
  SocModel empty("empty", n130(), 1.3_V);
  EXPECT_THROW(empty.evaluate(ComputeDemand{1.0, 0, 0, 0}, 1_Hz),
               std::logic_error);
  EXPECT_THROW(empty.max_rate(ComputeDemand{1.0, 0, 0, 0}),
               std::logic_error);
  auto s = media_soc();
  EXPECT_THROW(s.max_rate(ComputeDemand{0.0, 0.0, 0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(s.evaluate(ComputeDemand{1.0, 0, 0, 0}, u::Frequency(-1.0)),
               std::invalid_argument);
}

TEST(Soc, VideoWorkloadsRankCorrectly) {
  // SD must be easier than HD on the same SoC.
  const auto s = media_soc();
  const auto sd = workload::video_decode_sd();
  const auto hd = workload::video_decode_hd();
  EXPECT_GT(s.max_rate(sd.demand).value(), s.max_rate(hd.demand).value());
}

// Property: adding cores never reduces capacity or max rate.
class SocScaling : public ::testing::TestWithParam<int> {};

TEST_P(SocScaling, MoreCoresMoreCapacity) {
  const int cores = GetParam();
  SocModel small("small", n130(), 1.3_V);
  SocModel large("large", n130(), 1.3_V);
  for (int i = 0; i < cores; ++i) small.add_core(arch::dsp_core());
  for (int i = 0; i < cores + 1; ++i) large.add_core(arch::dsp_core());
  EXPECT_GT(large.compute_capacity(), small.compute_capacity());
  const ComputeDemand d{1e6, 0.0, 0.0, 0.0};
  EXPECT_GT(large.max_rate(d).value(), small.max_rate(d).value());
  // But more cores leak more at idle.
  EXPECT_GT(large.evaluate(d, u::Frequency(0.0)).power,
            small.evaluate(d, u::Frequency(0.0)).power);
}

INSTANTIATE_TEST_SUITE_P(CoreCounts, SocScaling, ::testing::Values(1, 2, 4));
