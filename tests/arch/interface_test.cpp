#include "ambisim/arch/interface.hpp"

#include <gtest/gtest.h>

using namespace ambisim;
namespace u = ambisim::units;
using namespace ambisim::units::literals;
using arch::AdcModel;
using arch::AudioOutput;
using arch::DisplayModel;
using arch::SensorFrontEnd;

TEST(Adc, PowerFollowsWaldenFom) {
  const AdcModel adc(10.0, 1_MHz, u::Energy(1e-12));
  // P = 1 pJ * 2^10 * 1e6 = 1.024 mW.
  EXPECT_NEAR(adc.power().value(), 1.024e-3, 1e-9);
  EXPECT_NEAR(adc.energy_per_sample().value(), 1.024e-9, 1e-15);
}

TEST(Adc, EveryExtraBitDoublesPower) {
  const AdcModel a(8.0, 1_MHz);
  const AdcModel b(9.0, 1_MHz);
  EXPECT_NEAR(b.power().value() / a.power().value(), 2.0, 1e-9);
}

TEST(Adc, InformationRateIsBitsTimesRate) {
  const AdcModel adc(12.0, 48_kHz);
  EXPECT_DOUBLE_EQ(adc.information_rate().value(), 12.0 * 48e3);
}

TEST(Adc, Validation) {
  EXPECT_THROW(AdcModel(0.0, 1_MHz), std::invalid_argument);
  EXPECT_THROW(AdcModel(30.0, 1_MHz), std::invalid_argument);
  EXPECT_THROW(AdcModel(8.0, u::Frequency(0.0)), std::invalid_argument);
  EXPECT_THROW(AdcModel(8.0, 1_MHz, u::Energy(0.0)), std::invalid_argument);
}

TEST(SensorFrontEnd, PresetsOrderedByComplexity) {
  const auto temp = SensorFrontEnd::temperature();
  const auto pir = SensorFrontEnd::passive_infrared();
  const auto mic = SensorFrontEnd::microphone();
  const auto cam = SensorFrontEnd::image_sensor_qvga();
  EXPECT_LT(temp.active_power, pir.active_power);
  EXPECT_LT(pir.active_power, mic.active_power);
  EXPECT_LT(mic.active_power, cam.active_power);
  for (const auto& fe : {temp, pir, mic, cam}) {
    EXPECT_LT(fe.standby_power, fe.active_power) << fe.kind;
    EXPECT_GT(fe.warmup.value(), 0.0) << fe.kind;
  }
}

TEST(Display, PowerHasBacklightFloor) {
  const DisplayModel d(1000.0, 30_Hz, 100_mW, u::Energy(1e-9));
  EXPECT_NEAR(d.power().value(), 0.1 + 1000.0 * 30.0 * 1e-9, 1e-12);
}

TEST(Display, MobileVsTvScale) {
  const auto lcd = DisplayModel::mobile_lcd();
  const auto tv = DisplayModel::tv_panel();
  EXPECT_LT(lcd.power().value(), 0.1);   // tens of mW
  EXPECT_GT(tv.power().value(), 5.0);    // watts
  EXPECT_GT(tv.information_rate(), lcd.information_rate());
}

TEST(Display, Validation) {
  EXPECT_THROW(DisplayModel(0.0, 30_Hz, 1_mW), std::invalid_argument);
  EXPECT_THROW(DisplayModel(100.0, u::Frequency(0.0), 1_mW),
               std::invalid_argument);
  EXPECT_THROW(DisplayModel::mobile_lcd().information_rate(0.0),
               std::invalid_argument);
}

TEST(AudioOutput, PresetsAndRates) {
  const auto ear = AudioOutput::earpiece();
  const auto spk = AudioOutput::loudspeaker();
  EXPECT_LT(ear.amplifier_power, spk.amplifier_power);
  EXPECT_DOUBLE_EQ(ear.information_rate().value(), 44100.0 * 16.0);
}
