#include "ambisim/arch/interconnect.hpp"

#include <gtest/gtest.h>

using namespace ambisim;
namespace u = ambisim::units;
using namespace ambisim::units::literals;
using arch::NocLink;
using arch::OnChipBus;

namespace {
const tech::TechnologyNode& n130() {
  return tech::TechnologyLibrary::standard().node("130nm");
}
OnChipBus bus(double len_mm = 5.0, double width = 32.0) {
  return OnChipBus(n130(), 1.3_V, len_mm, width, 100_MHz);
}
}  // namespace

TEST(OnChipBus, TransferEnergyLinearInBitsAndLength) {
  const auto b5 = bus(5.0);
  const auto b10 = bus(10.0);
  EXPECT_NEAR(b5.transfer_energy(2000.0).value(),
              2.0 * b5.transfer_energy(1000.0).value(), 1e-18);
  EXPECT_NEAR(b10.transfer_energy(1000.0).value(),
              2.0 * b5.transfer_energy(1000.0).value(), 1e-18);
  EXPECT_THROW(b5.transfer_energy(-1.0), std::invalid_argument);
}

TEST(OnChipBus, BandwidthIsWidthTimesClock) {
  EXPECT_DOUBLE_EQ(bus(5.0, 64.0).bandwidth().value(), 64.0 * 100e6);
  EXPECT_DOUBLE_EQ(bus().transfer_time(3200.0).value(), 1e-6);
}

TEST(OnChipBus, PowerAtRateIsEnergyTimesRate) {
  const auto b = bus();
  const u::BitRate r = 1.0_Gbps;
  EXPECT_NEAR(b.power_at_rate(r).value(),
              b.transfer_energy(1.0).value() * 1e9, 1e-15);
  EXPECT_THROW(b.power_at_rate(b.bandwidth() * 2.0), std::domain_error);
  EXPECT_THROW(b.power_at_rate(u::BitRate(-1.0)), std::invalid_argument);
}

TEST(OnChipBus, GeometryValidation) {
  EXPECT_THROW(OnChipBus(n130(), 1.3_V, 0.0, 32.0, 100_MHz),
               std::invalid_argument);
  EXPECT_THROW(OnChipBus(n130(), 1.3_V, 5.0, -1.0, 100_MHz),
               std::invalid_argument);
  EXPECT_THROW(OnChipBus(n130(), 1.3_V, 5.0, 32.0, 100_GHz),
               std::domain_error);
}

TEST(NocLink, FlitEnergyHasRouterAndWireTerms) {
  const NocLink link(n130(), 1.3_V, 2.0, 64.0, 200_MHz);
  const double v = 1.3;
  const double wire_only = 0.5 * 64.0 * OnChipBus::kWireCapPerMm * 2.0 * v * v;
  EXPECT_GT(link.flit_energy().value(), wire_only);
}

TEST(NocLink, TransferScalesWithHopsAndBits) {
  const NocLink link(n130(), 1.3_V, 2.0, 64.0, 200_MHz);
  const auto e1 = link.transfer_energy(6400.0, 1);
  const auto e3 = link.transfer_energy(6400.0, 3);
  EXPECT_NEAR(e3.value(), 3.0 * e1.value(), 1e-18);
  EXPECT_DOUBLE_EQ(link.transfer_energy(6400.0, 0).value(), 0.0);
  EXPECT_THROW(link.transfer_energy(-1.0, 1), std::invalid_argument);
  EXPECT_THROW(link.transfer_energy(1.0, -1), std::invalid_argument);
}

TEST(NocLink, BandwidthAndValidation) {
  const NocLink link(n130(), 1.3_V, 2.0, 64.0, 200_MHz);
  EXPECT_DOUBLE_EQ(link.link_bandwidth().value(), 64.0 * 200e6);
  EXPECT_THROW(NocLink(n130(), 1.3_V, -2.0, 64.0, 200_MHz),
               std::invalid_argument);
  EXPECT_THROW(NocLink(n130(), 1.3_V, 2.0, 64.0, u::Frequency(0.0)),
               std::invalid_argument);
}
