#include "ambisim/energy/battery.hpp"

#include <gtest/gtest.h>

using ambisim::energy::Battery;
namespace u = ambisim::units;
using namespace ambisim::units::literals;

TEST(Battery, CapacityIsVoltageTimesCharge) {
  Battery b(Battery::coin_cell_cr2032());
  EXPECT_NEAR(b.capacity().value(), 3.0 * 0.225 * 3600.0, 1e-6);
  EXPECT_DOUBLE_EQ(b.state_of_charge(), 1.0);
  EXPECT_FALSE(b.depleted());
}

TEST(Battery, DrawRemovesEnergy) {
  Battery b(Battery::coin_cell_cr2032());
  const auto delivered = b.draw(100_uW, 1000_s);
  EXPECT_NEAR(delivered.value(), 0.1, 1e-9);
  EXPECT_LT(b.remaining(), b.capacity());
  // Below rated current: no derating, only self-discharge on top.
  EXPECT_NEAR(b.capacity().value() - b.remaining().value(),
              0.1 + Battery::coin_cell_cr2032().self_discharge.value() * 1000,
              1e-9);
}

TEST(Battery, HighRateDrawIsDerated) {
  // Drawing far above the rated current must cost more charge than the
  // delivered energy (Peukert effect).
  auto spec = Battery::coin_cell_cr2032();
  Battery gentle(spec), harsh(spec);
  // 0.3 mW at 3 V = 0.1 mA (below 0.2 mA rating); 60 mW = 20 mA (100x).
  gentle.draw(0.3_mW, 100_s);
  harsh.draw(60.0_mW, 0.5_s);  // same 30 mJ delivered
  const double drop_gentle = spec.voltage.value() == 0
                                 ? 0
                                 : gentle.capacity().value() -
                                       gentle.remaining().value();
  const double drop_harsh =
      harsh.capacity().value() - harsh.remaining().value();
  EXPECT_GT(drop_harsh, drop_gentle * 1.2);
}

TEST(Battery, DepletesPartwayThroughInterval) {
  Battery b(Battery::thin_film_1mAh());  // 3 V * 1 mAh = 10.8 J
  const auto delivered = b.draw(1.0_W, 60_s);  // wants 60 J
  EXPECT_TRUE(b.depleted());
  EXPECT_LT(delivered.value(), 60.0);
  EXPECT_GT(delivered.value(), 0.0);
  // No more energy afterwards.
  EXPECT_DOUBLE_EQ(b.draw(1.0_W, 1_s).value(), 0.0);
}

TEST(Battery, RechargeClampsAtCapacity) {
  Battery b(Battery::thin_film_1mAh());
  b.draw(10.0_mW, 100_s);  // remove 1 J
  const auto stored = b.recharge(100_J);
  EXPECT_LE(b.remaining(), b.capacity());
  EXPECT_NEAR(b.state_of_charge(), 1.0, 1e-12);
  EXPECT_LT(stored.value(), 100.0);
  EXPECT_THROW(b.recharge(u::Energy(-1.0)), std::invalid_argument);
}

TEST(Battery, SelfDischargeDrainsIdleCell) {
  Battery b(Battery::coin_cell_cr2032());
  b.idle(u::Time(86400.0 * 365.0));
  EXPECT_LT(b.state_of_charge(), 1.0);
  EXPECT_GT(b.state_of_charge(), 0.9);  // coin cells keep ~years of shelf life
}

TEST(Battery, LifetimeMatchesDrawSimulation) {
  Battery analytic(Battery::coin_cell_cr2032());
  const u::Power load = 50_uW;
  const u::Time predicted = analytic.lifetime_at(load);

  Battery stepped(Battery::coin_cell_cr2032());
  double t = 0.0;
  const double dt = predicted.value() / 1000.0;
  while (!stepped.depleted()) {
    stepped.draw(load, u::Time(dt));
    t += dt;
    ASSERT_LT(t, predicted.value() * 1.1);
  }
  EXPECT_NEAR(t, predicted.value(), predicted.value() * 0.01);
}

TEST(Battery, LifetimeInverseInPowerBelowRating) {
  Battery b(Battery::li_ion_1000mAh());
  const auto t1 = b.lifetime_at(10_mW);
  const auto t2 = b.lifetime_at(20_mW);
  EXPECT_NEAR(t1.value() / t2.value(), 2.0, 0.01);
}

TEST(Battery, ZeroLoadLastsForever) {
  Battery spec_no_selfdischarge({"ideal", 3.0_V, 100_mAh, 1.0,
                                 u::Current(1e-3), u::Power(0.0)});
  EXPECT_GE(spec_no_selfdischarge.lifetime_at(u::Power(0.0)).value(), 1e17);
}

TEST(Battery, InvalidSpecsRejected) {
  auto s = Battery::coin_cell_cr2032();
  s.peukert = 0.9;
  EXPECT_THROW(Battery{s}, std::invalid_argument);
  s = Battery::coin_cell_cr2032();
  s.capacity = u::Charge(0.0);
  EXPECT_THROW(Battery{s}, std::invalid_argument);
}

TEST(Battery, InvalidDrawRejected) {
  Battery b(Battery::coin_cell_cr2032());
  EXPECT_THROW(b.draw(u::Power(-1.0), 1_s), std::invalid_argument);
  EXPECT_THROW(b.draw(1_mW, u::Time(-1.0)), std::invalid_argument);
}

// Property: every preset battery spec is internally consistent.
class BatteryPresets
    : public ::testing::TestWithParam<ambisim::energy::Battery::Spec> {};

TEST_P(BatteryPresets, PresetIsValidAndUsable) {
  Battery b(GetParam());
  EXPECT_GT(b.capacity().value(), 0.0);
  EXPECT_DOUBLE_EQ(b.state_of_charge(), 1.0);
  const auto delivered = b.draw(10_uW, 10_s);
  EXPECT_NEAR(delivered.value(), 1e-4, 1e-9);
  EXPECT_GT(b.lifetime_at(1_mW).value(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, BatteryPresets,
    ::testing::Values(Battery::coin_cell_cr2032(), Battery::alkaline_aa(),
                      Battery::li_ion_1000mAh(), Battery::thin_film_1mAh()),
    [](const auto& info) { return info.param.name == "LiIon-1000"
                                      ? std::string("LiIon1000")
                                      : info.param.name == "AA-alkaline"
                                            ? std::string("AAalkaline")
                                            : info.param.name == "CR2032"
                                                  ? std::string("CR2032")
                                                  : std::string("ThinFilm1"); });

// --- brown-out hysteresis ---

TEST(BatteryBrownOut, EntersAtCutoffRecoversOnlyAtRecovery) {
  Battery b(Battery::thin_film_1mAh());
  b.configure_brownout(0.10, 0.30);
  EXPECT_FALSE(b.brown_out());

  b.set_state_of_charge(0.11);
  EXPECT_FALSE(b.brown_out());
  b.set_state_of_charge(0.10);  // at the cutoff: latched
  EXPECT_TRUE(b.brown_out());

  // Inside the hysteresis band the latch holds, in both directions.
  b.set_state_of_charge(0.20);
  EXPECT_TRUE(b.brown_out());
  b.set_state_of_charge(0.29);
  EXPECT_TRUE(b.brown_out());
  b.set_state_of_charge(0.30);  // only at the recovery threshold
  EXPECT_FALSE(b.brown_out());

  // And once recovered it stays up until the cutoff again.
  b.set_state_of_charge(0.15);
  EXPECT_FALSE(b.brown_out());
  b.set_state_of_charge(0.05);
  EXPECT_TRUE(b.brown_out());
}

TEST(BatteryBrownOut, DrawAndRechargeDriveTheLatch) {
  auto spec = Battery::thin_film_1mAh();
  spec.self_discharge = u::Power(0.0);
  Battery b(spec);
  b.configure_brownout(0.10, 0.30);
  const double cap = b.capacity().value();

  // Drain to just above the cutoff, then across it.
  b.draw(u::Power(cap * 0.89), 1_s);
  EXPECT_FALSE(b.brown_out());
  b.draw(u::Power(cap * 0.02), 1_s);
  EXPECT_TRUE(b.brown_out());

  // A partial recharge inside the band must NOT clear the latch (this is
  // the anti-flapping property: a sagging harvester can't rapid-cycle the
  // node at the cutoff).
  b.recharge(u::Energy(cap * 0.15));
  EXPECT_TRUE(b.brown_out());
  b.recharge(u::Energy(cap * 0.10));
  EXPECT_FALSE(b.brown_out());
}

TEST(BatteryBrownOut, DegenerateEqualThresholdsDoNotFlap) {
  // cutoff == recovery collapses the band; soc parked exactly on the
  // threshold must hold one stable state, not oscillate per update.
  Battery b(Battery::thin_film_1mAh());
  b.configure_brownout(0.10, 0.10);
  b.set_state_of_charge(0.10);
  EXPECT_TRUE(b.brown_out());
  b.set_state_of_charge(0.10);
  EXPECT_TRUE(b.brown_out());  // still latched: recovery needs soc > cutoff
  b.set_state_of_charge(0.11);
  EXPECT_FALSE(b.brown_out());
}

TEST(BatteryBrownOut, DisabledByDefaultAndValidated) {
  Battery b(Battery::thin_film_1mAh());
  b.set_state_of_charge(0.0);
  EXPECT_FALSE(b.brown_out());  // unconfigured: never latches

  EXPECT_THROW(b.configure_brownout(-0.1, 0.5), std::invalid_argument);
  EXPECT_THROW(b.configure_brownout(0.5, 0.4), std::invalid_argument);
  EXPECT_THROW(b.configure_brownout(0.5, 1.1), std::invalid_argument);
}

TEST(BatteryBrownOut, IdleShelfDrainCanLatch) {
  auto spec = Battery::thin_film_1mAh();
  spec.self_discharge = u::Power(1e-3);
  Battery b(spec);
  b.configure_brownout(0.50, 0.60);
  b.set_state_of_charge(0.505);
  EXPECT_FALSE(b.brown_out());
  const double cap = b.capacity().value();
  // Enough idle time for shelf drain to cross the cutoff.
  b.idle(u::Time(cap * 0.01 / 1e-3));
  EXPECT_TRUE(b.brown_out());
}
