#include "ambisim/energy/ledger.hpp"

#include <gtest/gtest.h>

using ambisim::energy::DutyCycleLoad;
using ambisim::energy::EnergyLedger;
using ambisim::energy::max_neutral_duty;
namespace u = ambisim::units;
using namespace ambisim::units::literals;

TEST(EnergyLedger, AccumulatesPerComponent) {
  EnergyLedger l;
  EXPECT_TRUE(l.empty());
  l.charge("radio", 2_J);
  l.charge("cpu", 1_J);
  l.charge("radio", 3_J);
  EXPECT_DOUBLE_EQ(l.of("radio").value(), 5.0);
  EXPECT_DOUBLE_EQ(l.of("cpu").value(), 1.0);
  EXPECT_DOUBLE_EQ(l.of("unknown").value(), 0.0);
  EXPECT_DOUBLE_EQ(l.total().value(), 6.0);
}

TEST(EnergyLedger, BreakdownSortedDescending) {
  EnergyLedger l;
  l.charge("a", 1_J);
  l.charge("b", 3_J);
  l.charge("c", 2_J);
  const auto bd = l.breakdown();
  ASSERT_EQ(bd.size(), 3u);
  EXPECT_EQ(bd[0].first, "b");
  EXPECT_EQ(bd[1].first, "c");
  EXPECT_EQ(bd[2].first, "a");
}

TEST(EnergyLedger, ShareSumsToOne) {
  EnergyLedger l;
  l.charge("a", 1_J);
  l.charge("b", 3_J);
  EXPECT_DOUBLE_EQ(l.share("a") + l.share("b"), 1.0);
  EnergyLedger empty;
  EXPECT_DOUBLE_EQ(empty.share("a"), 0.0);
}

TEST(EnergyLedger, MergeAndClear) {
  EnergyLedger a, b;
  a.charge("x", 1_J);
  b.charge("x", 2_J);
  b.charge("y", 5_J);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.of("x").value(), 3.0);
  EXPECT_DOUBLE_EQ(a.of("y").value(), 5.0);
  a.clear();
  EXPECT_TRUE(a.empty());
}

TEST(EnergyLedger, RejectsNegativeCharge) {
  EnergyLedger l;
  EXPECT_THROW(l.charge("x", u::Energy(-1.0)), std::invalid_argument);
}

TEST(DutyCycleLoad, AveragePowerInterpolates) {
  const DutyCycleLoad load{10_mW, 10_uW, 1_s, 100_ms};
  EXPECT_DOUBLE_EQ(load.duty(), 0.1);
  EXPECT_NEAR(load.average_power().value(), 0.1 * 10e-3 + 0.9 * 10e-6,
              1e-12);
}

TEST(DutyCycleLoad, ValidatesShape) {
  const DutyCycleLoad bad1{1_mW, 1_uW, u::Time(0.0), u::Time(0.0)};
  EXPECT_THROW((void)bad1.duty(), std::logic_error);
  const DutyCycleLoad bad2{1_mW, 1_uW, 1_s, 2_s};
  EXPECT_THROW((void)bad2.average_power(), std::logic_error);
}

TEST(MaxNeutralDuty, BoundaryBehaviour) {
  // Harvest below sleep: nothing sustainable.
  EXPECT_DOUBLE_EQ(max_neutral_duty(1_uW, 1_mW, 2_uW), 0.0);
  // Harvest above active: always-on sustainable.
  EXPECT_DOUBLE_EQ(max_neutral_duty(2_mW, 1_mW, 1_uW), 1.0);
  // Interpolation: harvest halfway between sleep and active.
  const double d = max_neutral_duty(u::Power(0.5005e-3), 1_mW, 1_uW);
  EXPECT_NEAR(d, 0.5, 1e-3);
  EXPECT_THROW(max_neutral_duty(1_mW, 1_uW, 2_uW), std::invalid_argument);
}

TEST(MaxNeutralDuty, ResultIsExactlyNeutral) {
  const u::Power active = 800_uW;
  const u::Power sleep = 5_uW;
  const u::Power harvest = 60_uW;
  const double d = max_neutral_duty(harvest, active, sleep);
  ASSERT_GT(d, 0.0);
  ASSERT_LT(d, 1.0);
  const DutyCycleLoad load{active, sleep, 1_s, u::Time(d)};
  EXPECT_NEAR(load.average_power().value(), harvest.value(),
              harvest.value() * 1e-9);
}
