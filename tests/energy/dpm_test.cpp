#include "ambisim/energy/dpm.hpp"

#include <gtest/gtest.h>

using namespace ambisim::energy;
namespace u = ambisim::units;
using namespace ambisim::units::literals;

namespace {
PowerStateSpec simple_spec() {
  // Idle 10 mW, sleep 1 mW, wake costs 45 mJ + 1 ms at sleep power:
  // break-even = (0.045 + 0.001*0.001) / 0.009 ~ 5.0 s.
  return {100_mW, 10_mW, 1_mW, 1_ms, u::Energy(45e-3)};
}
}  // namespace

TEST(Dpm, BreakEvenFormula) {
  const auto spec = simple_spec();
  EXPECT_NEAR(spec.break_even().value(),
              (45e-3 + 1e-3 * 1e-3) / 9e-3, 1e-9);
  PowerStateSpec bad = spec;
  bad.sleep = bad.idle;
  EXPECT_THROW(bad.break_even(), std::logic_error);
}

TEST(Dpm, AlwaysOnIsIdlePowerTimesTime) {
  const auto r = dpm_always_on(simple_spec(), {1.0, 2.0, 3.0});
  EXPECT_NEAR(r.energy.value(), 10e-3 * 6.0, 1e-12);
  EXPECT_EQ(r.sleep_transitions, 0);
  EXPECT_DOUBLE_EQ(r.added_latency.value(), 0.0);
}

TEST(Dpm, OracleSleepsOnlyBeyondBreakEven) {
  const auto spec = simple_spec();
  // Periods: one below break-even (stays idle), one above (sleeps).
  const auto r = dpm_oracle(spec, {2.0, 100.0});
  EXPECT_EQ(r.sleep_transitions, 1);
  EXPECT_NEAR(r.energy.value(),
              10e-3 * 2.0 + 1e-3 * 100.0 + 45e-3, 1e-9);
}

TEST(Dpm, OracleNeverWorseThanAnyTimeout) {
  const auto spec = simple_spec();
  ambisim::sim::Rng rng(3);
  const auto trace = exponential_idle_trace(rng, 2000, 4.0);
  const auto oracle = dpm_oracle(spec, trace);
  for (double to : {0.0, 1.0, 5.0, 20.0, 1e9}) {
    const auto t = dpm_timeout(spec, trace, u::Time(to));
    EXPECT_LE(oracle.energy.value(), t.energy.value() * (1.0 + 1e-12))
        << "timeout " << to;
  }
}

TEST(Dpm, BreakEvenTimeoutIsTwoCompetitive) {
  const auto spec = simple_spec();
  ambisim::sim::Rng rng(17);
  for (double mean : {1.0, 5.0, 25.0}) {
    const auto trace = exponential_idle_trace(rng, 3000, mean);
    const auto oracle = dpm_oracle(spec, trace);
    const auto timeout = dpm_timeout(spec, trace, spec.break_even());
    EXPECT_LE(timeout.energy.value(), 2.0 * oracle.energy.value() * 1.001)
        << "mean " << mean;
  }
}

TEST(Dpm, ZeroTimeoutSleepsEveryPeriod) {
  const auto spec = simple_spec();
  const auto r = dpm_timeout(spec, {1.0, 2.0}, u::Time(0.0));
  EXPECT_EQ(r.sleep_transitions, 2);
  EXPECT_NEAR(r.energy.value(), 1e-3 * 3.0 + 2 * 45e-3, 1e-9);
  EXPECT_NEAR(r.added_latency.value(), 2e-3, 1e-12);
}

TEST(Dpm, HugeTimeoutEqualsAlwaysOn) {
  const auto spec = simple_spec();
  ambisim::sim::Rng rng(5);
  const auto trace = exponential_idle_trace(rng, 500, 3.0);
  const auto always = dpm_always_on(spec, trace);
  const auto lazy = dpm_timeout(spec, trace, u::Time(1e12));
  EXPECT_NEAR(lazy.energy.value(), always.energy.value(), 1e-9);
  EXPECT_DOUBLE_EQ(lazy.energy_ratio_vs(always), 1.0);
}

TEST(Dpm, LongIdlePeriodsRewardSleeping) {
  const auto spec = simple_spec();
  ambisim::sim::Rng rng(7);
  // Mean 50 s >> break-even 5 s: timeout policy should save a lot.
  const auto trace = exponential_idle_trace(rng, 1000, 50.0);
  const auto always = dpm_always_on(spec, trace);
  const auto timeout = dpm_timeout(spec, trace, spec.break_even());
  EXPECT_LT(timeout.energy.value(), 0.5 * always.energy.value());
}

TEST(Dpm, ParetoTraceIsHeavyTailed) {
  ambisim::sim::Rng rng(11);
  const auto trace = pareto_idle_trace(rng, 20'000, 1.0, 1.8);
  double mean = 0.0;
  double mx = 0.0;
  for (double t : trace) {
    EXPECT_GE(t, 1.0);
    mean += t;
    mx = std::max(mx, t);
  }
  mean /= trace.size();
  // alpha = 1.8 -> mean = alpha/(alpha-1) = 2.25 (sampling noise allowed).
  EXPECT_NEAR(mean, 2.25, 0.5);
  EXPECT_GT(mx, 20.0);  // heavy tail produces rare huge periods
}

TEST(Dpm, Validation) {
  const auto spec = simple_spec();
  EXPECT_THROW(dpm_always_on(spec, {}), std::invalid_argument);
  EXPECT_THROW(dpm_always_on(spec, {-1.0}), std::invalid_argument);
  EXPECT_THROW(dpm_timeout(spec, {1.0}, u::Time(-1.0)),
               std::invalid_argument);
  ambisim::sim::Rng rng(1);
  EXPECT_THROW(exponential_idle_trace(rng, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(pareto_idle_trace(rng, 10, 1.0, 0.5),
               std::invalid_argument);
  DpmResult empty;
  EXPECT_THROW(empty.energy_ratio_vs(empty), std::logic_error);
}

// Property: across radio presets, the break-even time is short enough that
// second-scale idle gaps are worth sleeping through.
class DpmPresets : public ::testing::TestWithParam<int> {};

TEST_P(DpmPresets, BreakEvenSubSecond) {
  PowerStateSpec spec;
  switch (GetParam()) {
    case 0: spec = PowerStateSpec::ulp_radio(); break;
    case 1: spec = PowerStateSpec::bluetooth_radio(); break;
    default: spec = PowerStateSpec::wlan_radio(); break;
  }
  EXPECT_GT(spec.break_even().value(), 0.0);
  EXPECT_LT(spec.break_even().value(), 1.0);
  EXPECT_LT(spec.sleep, spec.idle);
  EXPECT_LT(spec.idle, spec.active);
}

INSTANTIATE_TEST_SUITE_P(Radios, DpmPresets, ::testing::Values(0, 1, 2));
