#include "ambisim/energy/buffer_sim.hpp"

#include <gtest/gtest.h>

using namespace ambisim::energy;
namespace u = ambisim::units;
using namespace ambisim::units::literals;

namespace {

BufferSimConfig outdoor_config(double load_uw) {
  BufferSimConfig cfg;
  cfg.harvester =
      std::make_shared<SolarHarvester>(2_cm2, 0.15, /*indoor=*/false);
  cfg.buffer = Battery::thin_film_1mAh();  // 10.8 J
  cfg.load = u::Power(load_uw * 1e-6);
  cfg.duration = u::Time(86400.0 * 5);
  cfg.step = u::Time(120.0);
  return cfg;
}

}  // namespace

TEST(BufferSim, LightLoadSurvivesNights) {
  // Outdoor average harvest ~ 955 uW (100 W/m^2 peak on 2 cm^2 at 15 %);
  // a 100 uW load rides the nights on the 10.8 J film easily.
  const auto r = simulate_energy_buffer(outdoor_config(100.0));
  EXPECT_TRUE(r.survived);
  EXPECT_TRUE(r.sustainable);
  EXPECT_GT(r.min_soc, 0.0);
  EXPECT_LT(r.min_soc, 1.0);  // dips at night
  EXPECT_GT(r.harvested.value(), r.consumed.value());
  EXPECT_FALSE(r.soc_trace.empty());
}

TEST(BufferSim, OverloadDrainsTheBuffer) {
  // 1.5 mW load against ~955 uW average harvest: dies within days.
  const auto r = simulate_energy_buffer(outdoor_config(1500.0));
  EXPECT_FALSE(r.survived);
  EXPECT_GT(r.first_depletion.value(), 0.0);
  EXPECT_LT(r.first_depletion.value(), 86400.0 * 5);
  EXPECT_DOUBLE_EQ(r.min_soc, 0.0);
}

TEST(BufferSim, SocTraceShowsDiurnalSwing) {
  // 150 uW overnight is ~6.5 J of the 10.8 J film: a deep visible dip.
  const auto r = simulate_energy_buffer(outdoor_config(150.0));
  ASSERT_TRUE(r.survived);
  // The state of charge must cycle: find a dip below the final value
  // followed by recovery.
  double lo = 1.0;
  double hi = 0.0;
  for (const auto& p : r.soc_trace.points()) {
    lo = std::min(lo, p.value);
    hi = std::max(hi, p.value);
  }
  EXPECT_GT(hi - lo, 0.05);  // visible day/night swing
}

TEST(BufferSim, IndoorConstantHarvestIsFlat) {
  BufferSimConfig cfg = outdoor_config(5.0);
  cfg.harvester = std::make_shared<SolarHarvester>(2_cm2, 0.15, true);
  cfg.load = u::Power(5e-6);  // well under the 30 uW indoor harvest
  const auto r = simulate_energy_buffer(cfg);
  EXPECT_TRUE(r.survived);
  // 30 uW constant harvest vs 5 uW load: SoC stays pinned at full.
  EXPECT_GT(r.min_soc, 0.999);
  EXPECT_TRUE(r.sustainable);
}

TEST(BufferSim, InitialSocRespected) {
  BufferSimConfig cfg = outdoor_config(100.0);
  cfg.initial_soc = 0.25;
  const auto r = simulate_energy_buffer(cfg);
  ASSERT_FALSE(r.soc_trace.empty());
  EXPECT_LE(r.soc_trace.points().front().value, 0.30);
}

TEST(BufferSim, Validation) {
  BufferSimConfig cfg = outdoor_config(100.0);
  cfg.harvester.reset();
  EXPECT_THROW(simulate_energy_buffer(cfg), std::invalid_argument);
  cfg = outdoor_config(100.0);
  cfg.step = u::Time(0.0);
  EXPECT_THROW(simulate_energy_buffer(cfg), std::invalid_argument);
  cfg = outdoor_config(100.0);
  cfg.initial_soc = 1.5;
  EXPECT_THROW(simulate_energy_buffer(cfg), std::invalid_argument);
}

TEST(MinimumBuffer, SizesTheNight) {
  // The buffer must carry the load through ~12 dark hours plus the ramps:
  // for a 100 uW load that is at least 100 uW * 10 h ~ 3.6 J.
  BufferSimConfig cfg = outdoor_config(100.0);
  const u::Energy e = minimum_buffer_energy(cfg, 1e3, 30);
  EXPECT_GT(e.value(), 100e-6 * 10.0 * 3600.0);
  EXPECT_LT(e.value(), 10.8);  // below the full thin-film cell
}

TEST(MinimumBuffer, GrowsWithLoad) {
  const auto small = minimum_buffer_energy(outdoor_config(50.0), 1e3, 25);
  const auto large = minimum_buffer_energy(outdoor_config(150.0), 1e3, 25);
  EXPECT_GT(large.value(), 2.0 * small.value());
}

TEST(MinimumBuffer, UnsustainableLoadThrows) {
  // 2 mW exceeds the ~955 uW average harvest: no buffer size helps.
  EXPECT_THROW(minimum_buffer_energy(outdoor_config(2000.0), 4.0, 10),
               std::domain_error);
  EXPECT_THROW(minimum_buffer_energy(outdoor_config(100.0), 0.5, 10),
               std::invalid_argument);
}

TEST(Battery, SetStateOfChargeHelper) {
  Battery b(Battery::thin_film_1mAh());
  b.set_state_of_charge(0.5);
  EXPECT_NEAR(b.state_of_charge(), 0.5, 1e-12);
  EXPECT_THROW(b.set_state_of_charge(-0.1), std::invalid_argument);
  EXPECT_THROW(b.set_state_of_charge(1.1), std::invalid_argument);
}

// --- charge-then-burst edge cases (the battery-free tag MAC) ---

namespace {

/// 47 uF @ 2.4 V storage capacitor, no field: every joule is prepaid.
ChargeBurstConfig dark_tag_config() {
  ChargeBurstConfig cfg;
  cfg.harvester = std::make_shared<ConstantSource>(u::Power(0.0));
  cfg.duration = u::Time(120.0);
  cfg.step = u::Time(0.1);
  return cfg;
}

}  // namespace

TEST(ChargeBurst, CapacitorEmptyMidBurstAborts) {
  // A 10 mW x 50 ms burst wants 500 uJ; at wake (90 %) the 47 uF cap holds
  // ~244 uJ above empty, so the burst must die partway and be counted as
  // aborted, not completed.
  ChargeBurstConfig cfg = dark_tag_config();
  cfg.initial_soc = cfg.wake_soc;
  cfg.burst_power = u::Power(10e-3);
  cfg.burst_duration = u::Time(0.05);
  const ChargeBurstResult r = simulate_charge_burst(cfg);
  EXPECT_EQ(r.bursts_completed, 0);
  EXPECT_EQ(r.bursts_aborted, 1);
  EXPECT_DOUBLE_EQ(r.final_soc, 0.0);
  // The abort drained whatever was there — no more than the cap held plus
  // the (requested) sleep draw over the rest of the horizon.
  EXPECT_LE(r.consumed.value(),
            0.9 * 47e-6 * 2.4 * 2.4 + 120.0 * 1e-6 + 1e-9);
}

TEST(ChargeBurst, InitialSocExactlyAtWakeBurstsImmediately) {
  // SoC exactly at the threshold is awake, not "one ulp short": the burst
  // fires at t = 0 with zero charge latency.
  ChargeBurstConfig cfg = dark_tag_config();
  cfg.initial_soc = cfg.wake_soc;
  const ChargeBurstResult r = simulate_charge_burst(cfg);
  EXPECT_EQ(r.bursts_completed, 1);
  EXPECT_EQ(r.bursts_aborted, 0);
  EXPECT_FALSE(r.starved);
  EXPECT_DOUBLE_EQ(r.first_burst.value(), 0.0);
  EXPECT_DOUBLE_EQ(r.mean_charge_latency_s, 0.0);
  // With no field the single burst is all the tag ever sends.
  EXPECT_LT(r.final_soc, cfg.wake_soc);
}

TEST(ChargeBurst, ZeroHarvestNeverReachesWake) {
  // Starvation must be reported as such: no bursts, zero first_burst,
  // starved flag set — not a crash and not a phantom wake.
  ChargeBurstConfig cfg = dark_tag_config();
  cfg.initial_soc = 0.5;  // below wake, and the sleep draw only sinks it
  const ChargeBurstResult r = simulate_charge_burst(cfg);
  EXPECT_TRUE(r.starved);
  EXPECT_EQ(r.bursts_completed, 0);
  EXPECT_EQ(r.bursts_aborted, 0);
  EXPECT_DOUBLE_EQ(r.first_burst.value(), 0.0);
  EXPECT_LT(r.final_soc, 0.5);
  EXPECT_DOUBLE_EQ(r.harvested.value(), 0.0);
}
