#include "ambisim/energy/harvester.hpp"

#include <gtest/gtest.h>

using namespace ambisim::energy;
namespace u = ambisim::units;
using namespace ambisim::units::literals;

TEST(SolarHarvester, IndoorIsConstant) {
  const SolarHarvester h(2_cm2, 0.15, /*indoor=*/true);
  EXPECT_DOUBLE_EQ(h.power_at(u::Time(0.0)).value(),
                   h.power_at(u::Time(43200.0)).value());
  // 1 W/m^2 * 2 cm^2 * 15 % = 30 uW.
  EXPECT_NEAR(h.average_power().value(), 30e-6, 1e-12);
  EXPECT_EQ(h.name(), "solar-indoor");
}

TEST(SolarHarvester, OutdoorFollowsDiurnalHalfSine) {
  const SolarHarvester h(2_cm2, 0.15, /*indoor=*/false);
  // Peak at 6 h into the cycle (quarter period of the sine).
  const double peak = h.power_at(u::Time(6.0 * 3600.0)).value();
  EXPECT_NEAR(peak, 100.0 * 2e-4 * 0.15, 1e-9);
  // Night: second half of the period harvests nothing.
  EXPECT_DOUBLE_EQ(h.power_at(u::Time(18.0 * 3600.0)).value(), 0.0);
  EXPECT_DOUBLE_EQ(h.power_at(u::Time(13.0 * 3600.0)).value(), 0.0);
  EXPECT_EQ(h.name(), "solar-outdoor");
}

TEST(SolarHarvester, AverageMatchesDailyIntegral) {
  const SolarHarvester h(4_cm2, 0.12, /*indoor=*/false);
  const u::Energy day = h.energy_between(u::Time(0.0), u::Time(86400.0),
                                         4096);
  EXPECT_NEAR(day.value() / 86400.0, h.average_power().value(),
              h.average_power().value() * 0.01);
}

TEST(SolarHarvester, DiurnalPatternRepeats) {
  const SolarHarvester h(2_cm2, 0.15, false);
  EXPECT_NEAR(h.power_at(u::Time(3600.0)).value(),
              h.power_at(u::Time(3600.0 + 86400.0)).value(), 1e-15);
}

TEST(SolarHarvester, RejectsBadParameters) {
  EXPECT_THROW(SolarHarvester(u::Area(0.0), 0.15, true),
               std::invalid_argument);
  EXPECT_THROW(SolarHarvester(2_cm2, 0.0, true), std::invalid_argument);
  EXPECT_THROW(SolarHarvester(2_cm2, 1.5, true), std::invalid_argument);
}

TEST(VibrationHarvester, ScalesWithVolume) {
  const VibrationHarvester h1(1.0);
  const VibrationHarvester h2(2.0);
  EXPECT_NEAR(h1.average_power().value(), 100e-6, 1e-12);
  EXPECT_NEAR(h2.average_power().value(), 200e-6, 1e-12);
  EXPECT_DOUBLE_EQ(h1.power_at(u::Time(5.0)).value(),
                   h1.average_power().value());
  EXPECT_THROW(VibrationHarvester(-1.0), std::invalid_argument);
}

TEST(ThermalHarvester, QuadraticInDeltaT) {
  const ThermalHarvester h5(4_cm2, 5.0);
  const ThermalHarvester h10(4_cm2, 10.0);
  EXPECT_NEAR(h10.average_power().value() / h5.average_power().value(), 4.0,
              1e-9);
  EXPECT_THROW(ThermalHarvester(4_cm2, -1.0), std::invalid_argument);
}

TEST(ConstantSource, IsConstant) {
  const ConstantSource s(5_W, "mains");
  EXPECT_DOUBLE_EQ(s.power_at(u::Time(123.0)).value(), 5.0);
  EXPECT_DOUBLE_EQ(s.average_power().value(), 5.0);
  EXPECT_EQ(s.name(), "mains");
  EXPECT_THROW(ConstantSource(u::Power(-1.0)), std::invalid_argument);
}

TEST(Harvester, EnergyBetweenValidation) {
  const ConstantSource s(1_W);
  EXPECT_NEAR(s.energy_between(u::Time(1.0), u::Time(3.0)).value(), 2.0,
              1e-9);
  EXPECT_THROW((void)s.energy_between(u::Time(3.0), u::Time(1.0)),
               std::invalid_argument);
  EXPECT_THROW((void)s.energy_between(u::Time(0.0), u::Time(1.0), 0),
               std::invalid_argument);
}

// Property: 2003-era harvester presets deliver microwatts, not milliwatts —
// the reason the autonomous node must be a microWatt-node.
TEST(Harvester, RealisticScaleIsMicrowatts) {
  const SolarHarvester pv(2_cm2, 0.15, true);
  const VibrationHarvester vib(1.0);
  const ThermalHarvester teg(4_cm2, 5.0);
  for (const Harvester* h :
       std::initializer_list<const Harvester*>{&pv, &vib, &teg}) {
    EXPECT_GT(h->average_power().value(), 1e-6) << h->name();
    EXPECT_LT(h->average_power().value(), 5e-3) << h->name();
  }
}

TEST(PowerDensityHarvester, ConstantFieldMatchesChain) {
  // 100 uW/cm^2 field, 50 cm^2 aperture, 55 % conversion -> 2.75 mW.
  const PowerDensityHarvester h(u::power_density_from_uw_cm2(100.0),
                                u::Area(50e-4), 0.55);
  EXPECT_NEAR(h.power_at(u::Time(0.0)).value(), 2.75e-3, 1e-12);
  EXPECT_NEAR(h.average_power().value(), 2.75e-3, 1e-12);
  EXPECT_DOUBLE_EQ(h.density_at(u::Time(500.0)).value(), 1.0);
  EXPECT_EQ(h.name(), "power-density");
}

TEST(PowerDensityHarvester, ProfileStepsBetweenBreakpoints) {
  // Gateway duty cycle: field on for 60 s, off for 60 s, back on.
  const PowerDensityHarvester h(
      {{u::Time(0.0), u::PowerDensity(0.5)},
       {u::Time(60.0), u::PowerDensity(0.0)},
       {u::Time(120.0), u::PowerDensity(0.5)}},
      u::Area(50e-4), 0.5);
  EXPECT_GT(h.power_at(u::Time(30.0)).value(), 0.0);
  EXPECT_DOUBLE_EQ(h.power_at(u::Time(90.0)).value(), 0.0);
  EXPECT_GT(h.power_at(u::Time(150.0)).value(), 0.0);
  // Before the first breakpoint the field is the first sample's.
  EXPECT_DOUBLE_EQ(h.density_at(u::Time(0.0)).value(), 0.5);
}

TEST(PowerDensityHarvester, AverageIsTimeWeighted) {
  // 0.4 W/m^2 for 100 s then 0.0 onwards: the span mean is 0.4 * aperture
  // * efficiency over the first segment only.
  const PowerDensityHarvester h({{u::Time(0.0), u::PowerDensity(0.4)},
                                 {u::Time(100.0), u::PowerDensity(0.0)}},
                                u::Area(1e-2), 1.0);
  EXPECT_NEAR(h.average_power().value(), 0.4 * 1e-2, 1e-12);
}

TEST(PowerDensityHarvester, RejectsBadArguments) {
  EXPECT_THROW(
      PowerDensityHarvester(std::vector<PowerDensityHarvester::Sample>{},
                            u::Area(1e-2), 0.5),
      std::invalid_argument);
  EXPECT_THROW(PowerDensityHarvester(u::PowerDensity(1.0), u::Area(0.0), 0.5),
               std::invalid_argument);
  EXPECT_THROW(PowerDensityHarvester(u::PowerDensity(1.0), u::Area(1e-2),
                                     1.5),
               std::invalid_argument);
  EXPECT_THROW(PowerDensityHarvester({{u::Time(10.0), u::PowerDensity(1.0)},
                                      {u::Time(5.0), u::PowerDensity(1.0)}},
                                     u::Area(1e-2), 0.5),
               std::invalid_argument);
}
