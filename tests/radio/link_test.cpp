#include "ambisim/radio/link.hpp"

#include <gtest/gtest.h>

using namespace ambisim::radio;
namespace u = ambisim::units;
using namespace ambisim::units::literals;

TEST(Dbm, RoundTripConversion) {
  EXPECT_NEAR(watt_to_dbm(u::Power(1e-3)), 0.0, 1e-12);
  EXPECT_NEAR(watt_to_dbm(u::Power(1.0)), 30.0, 1e-12);
  EXPECT_NEAR(dbm_to_watt(20.0).value(), 0.1, 1e-12);
  EXPECT_NEAR(watt_to_dbm(dbm_to_watt(-6.0)), -6.0, 1e-9);
  EXPECT_THROW(watt_to_dbm(u::Power(0.0)), std::invalid_argument);
}

TEST(PathLoss, MonotoneInDistanceAndExponent) {
  const auto fs = PathLossModel::free_space();
  const auto in = PathLossModel::indoor();
  EXPECT_LT(fs.loss_db(u::Length(10.0)), fs.loss_db(u::Length(20.0)));
  EXPECT_LT(fs.loss_db(u::Length(10.0)), in.loss_db(u::Length(10.0)));
  EXPECT_THROW(fs.loss_db(u::Length(0.0)), std::invalid_argument);
}

TEST(PathLoss, TenXDistanceCostsTenNdB) {
  const auto fs = PathLossModel::free_space();  // n = 2
  EXPECT_NEAR(fs.loss_db(u::Length(10.0)) - fs.loss_db(u::Length(1.0)),
              20.0, 1e-9);
  const auto in = PathLossModel::indoor();  // n = 3
  EXPECT_NEAR(in.loss_db(u::Length(10.0)) - in.loss_db(u::Length(1.0)),
              30.0, 1e-9);
}

TEST(PathLoss, ClampsBelowReferenceDistance) {
  const auto fs = PathLossModel::free_space();
  EXPECT_DOUBLE_EQ(fs.loss_db(u::Length(0.5)), fs.loss_at_ref_db);
}

TEST(NoiseFloor, ThermalPlusBandwidth) {
  // -174 + 10log10(1e6) + 10 = -104 dBm for 1 MHz, NF 10 dB.
  EXPECT_NEAR(noise_floor_dbm(1_MHz, 10.0), -104.0, 1e-9);
  EXPECT_THROW(noise_floor_dbm(u::Frequency(0.0)), std::invalid_argument);
}

TEST(Modulation, RequirementsOrdered) {
  // Denser constellations need more SNR.
  EXPECT_LT(LinkBudget::required_snr_db(Modulation::bpsk()),
            LinkBudget::required_snr_db(Modulation::qpsk()));
  EXPECT_LT(LinkBudget::required_snr_db(Modulation::qpsk()),
            LinkBudget::required_snr_db(Modulation::qam16()));
  EXPECT_LT(LinkBudget::required_snr_db(Modulation::qam16()),
            LinkBudget::required_snr_db(Modulation::qam64()));
}

namespace {
LinkBudget budget() {
  return LinkBudget{dbm_to_watt(0.0), PathLossModel::indoor(), 1_MHz, 10.0};
}
}  // namespace

TEST(LinkBudget, SnrFallsWithDistance) {
  const auto b = budget();
  EXPECT_GT(b.snr_db(u::Length(1.0)), b.snr_db(u::Length(10.0)));
  EXPECT_GT(b.snr_db(u::Length(10.0)), b.snr_db(u::Length(50.0)));
}

TEST(LinkBudget, ClosesExactlyUpToMaxRange) {
  const auto b = budget();
  const auto m = Modulation::fsk();
  const u::Length r = b.max_range(m);
  ASSERT_GT(r.value(), 1.0);
  EXPECT_TRUE(b.closes(r * 0.99, m));
  EXPECT_FALSE(b.closes(r * 1.05, m));
}

TEST(LinkBudget, MorePowerMoreRange) {
  auto weak = budget();
  auto strong = budget();
  strong.tx_radiated = dbm_to_watt(20.0);
  EXPECT_GT(strong.max_range(Modulation::fsk()).value(),
            weak.max_range(Modulation::fsk()).value());
}

TEST(LinkBudget, ShannonBeatsModulationRate) {
  const auto b = budget();
  const u::Length d{5.0};
  const auto m = Modulation::qpsk();
  if (b.closes(d, m)) {
    EXPECT_GT(b.shannon_capacity(d).value(),
              b.achievable_rate(d, m).value());
  }
}

TEST(LinkBudget, AchievableRateZeroBeyondRange) {
  const auto b = budget();
  const auto m = Modulation::fsk();
  const u::Length r = b.max_range(m);
  EXPECT_DOUBLE_EQ(b.achievable_rate(r * 2.0, m).value(), 0.0);
  EXPECT_GT(b.achievable_rate(r * 0.5, m).value(), 0.0);
}

TEST(LinkBudget, HopelessLinkHasZeroRange) {
  LinkBudget b{u::Power(1e-12), PathLossModel::dense_indoor(), 10_MHz, 15.0};
  EXPECT_DOUBLE_EQ(b.max_range(Modulation::qam64()).value(), 0.0);
}
