#include "ambisim/radio/ber.hpp"

#include <gtest/gtest.h>

using namespace ambisim::radio;
namespace u = ambisim::units;
using namespace ambisim::units::literals;

TEST(QFunction, KnownValues) {
  EXPECT_NEAR(q_function(0.0), 0.5, 1e-12);
  EXPECT_NEAR(q_function(1.0), 0.158655, 1e-5);
  EXPECT_NEAR(q_function(3.0), 0.00134990, 1e-7);
  EXPECT_NEAR(q_function(-1.0), 1.0 - 0.158655, 1e-5);
}

TEST(Ber, BpskMatchesTextbook) {
  // BPSK at Eb/N0 = 9.6 dB gives ~1e-5.
  const double ebn0 = std::pow(10.0, 9.6 / 10.0);
  EXPECT_NEAR(bit_error_rate(Modulation::bpsk(), ebn0), 1e-5, 3e-6);
  // QPSK (Gray) has identical BER.
  EXPECT_DOUBLE_EQ(bit_error_rate(Modulation::qpsk(), ebn0),
                   bit_error_rate(Modulation::bpsk(), ebn0));
}

TEST(Ber, MonotoneDecreasingInSnr) {
  for (const auto& m : {Modulation::bpsk(), Modulation::fsk(),
                        Modulation::ook(), Modulation::qam16(),
                        Modulation::qam64()}) {
    double prev = 1.0;
    for (double db = -5.0; db <= 20.0; db += 1.0) {
      const double ber = bit_error_rate(m, std::pow(10.0, db / 10.0));
      EXPECT_LE(ber, prev + 1e-15) << m.name << " at " << db << " dB";
      EXPECT_GE(ber, 0.0);
      EXPECT_LE(ber, 0.5);
      prev = ber;
    }
  }
}

TEST(Ber, CoherentBeatsNoncoherentBeatsDenseQam) {
  const double ebn0 = std::pow(10.0, 8.0 / 10.0);
  const double bpsk = bit_error_rate(Modulation::bpsk(), ebn0);
  const double fsk = bit_error_rate(Modulation::fsk(), ebn0);
  const double qam64 = bit_error_rate(Modulation::qam64(), ebn0);
  EXPECT_LT(bpsk, fsk);
  EXPECT_LT(fsk, qam64);
}

TEST(Ber, AtDistanceFallsOffWithRange) {
  const LinkBudget b{dbm_to_watt(0.0), PathLossModel::indoor(), 1_MHz, 10.0};
  const double near = bit_error_rate_at(b, Modulation::fsk(), u::Length(2.0));
  const double far = bit_error_rate_at(b, Modulation::fsk(), u::Length(40.0));
  EXPECT_LT(near, far);
  EXPECT_LT(near, 1e-9);
}

TEST(Per, CompoundsOverPacket) {
  EXPECT_NEAR(packet_error_rate(0.0, 1024.0), 0.0, 1e-15);
  EXPECT_NEAR(packet_error_rate(1e-4, 1024.0),
              1.0 - std::pow(1.0 - 1e-4, 1024.0), 1e-12);
  EXPECT_NEAR(packet_error_rate(0.5, 64.0), 1.0, 1e-12);
  EXPECT_THROW(packet_error_rate(-0.1, 10.0), std::invalid_argument);
  EXPECT_THROW(packet_error_rate(2.0, 10.0), std::invalid_argument);
}

TEST(Arq, PerfectLinkOneAttempt) {
  const ArqModel arq;
  EXPECT_DOUBLE_EQ(arq.expected_attempts(0.0), 1.0);
  EXPECT_DOUBLE_EQ(arq.delivery_probability(0.0), 1.0);
}

TEST(Arq, ExpectedAttemptsGrowWithPer) {
  const ArqModel arq;
  EXPECT_NEAR(arq.expected_attempts(0.5), 2.0, 0.05);  // ~1/(1-p), truncated
  EXPECT_GT(arq.expected_attempts(0.9), arq.expected_attempts(0.5));
  EXPECT_LE(arq.expected_attempts(0.999), arq.max_attempts);
}

TEST(Arq, DeliveryProbabilityTruncated) {
  const ArqModel arq{3, u::Information(64.0)};
  EXPECT_NEAR(arq.delivery_probability(0.5), 1.0 - 0.125, 1e-12);
}

TEST(Arq, EnergyPerDeliveredDivergesNearRange) {
  const RadioModel r(ulp_radio());
  const ArqModel arq;
  const auto cheap = arq.energy_per_delivered(r, 512_bit, 0.01);
  const auto pricey = arq.energy_per_delivered(r, 512_bit, 0.9);
  EXPECT_GT(pricey.value(), 3.0 * cheap.value());
  EXPECT_THROW(arq.energy_per_delivered(r, 512_bit, 1.0),
               std::domain_error);
}

TEST(EnergyPerDeliveredBit, FlatInsideRangeCliffAtEdge) {
  const RadioModel r(ulp_radio());
  const u::Length reach = r.max_range();
  const auto near = energy_per_delivered_bit(r, reach * 0.3, 512_bit);
  const auto mid = energy_per_delivered_bit(r, reach * 0.8, 512_bit);
  // max_range() is defined at 1e-3 BER, where 512-bit packets already see
  // ~40 % PER; the hard cliff sits ~30 % beyond it.
  const auto edge = energy_per_delivered_bit(r, reach * 1.3, 512_bit);
  // Comfortably inside range retransmissions are rare: near ~= mid.
  EXPECT_LT(mid.value(), near.value() * 1.5);
  // Past the edge the cost blows up.
  EXPECT_GT(edge.value(), mid.value() * 2.0);
}

TEST(OptimalRadiatedPower, GrowsWithDistance) {
  const auto params = ulp_radio();
  const auto p5 = optimal_radiated_power(params, u::Length(5.0), 512_bit);
  const auto p30 = optimal_radiated_power(params, u::Length(30.0), 512_bit);
  EXPECT_GE(p30.value(), p5.value());
  EXPECT_GT(p5.value(), 0.0);
}

TEST(OptimalRadiatedPower, HopelessRangeThrows) {
  const auto params = ulp_radio();
  EXPECT_THROW(optimal_radiated_power(params, u::Length(10'000.0), 512_bit,
                                      u::Power(1e-6), u::Power(1e-5), 10),
               std::domain_error);
  EXPECT_THROW(optimal_radiated_power(params, u::Length(5.0), 512_bit,
                                      u::Power(1e-3), u::Power(1e-6)),
               std::invalid_argument);
}

TEST(Ber, Validation) {
  EXPECT_THROW(bit_error_rate(Modulation::bpsk(), -1.0),
               std::invalid_argument);
  const ArqModel arq;
  EXPECT_THROW(arq.expected_attempts(1.5), std::invalid_argument);
}

// --- monostatic backscatter (the battery-free tag uplink) ---

TEST(Backscatter, RoundTripIsTwiceTheOneWayLossPlusTag) {
  // With tag_loss_db = 0 the monostatic BER at distance d must equal the
  // one-way BER of a budget whose path loss is paid twice — same SNR by
  // construction, same Eb/N0 chain.
  const LinkBudget b{dbm_to_watt(33.0), PathLossModel::free_space(), 1_MHz,
                     10.0};
  const u::Length d(8.0);
  LinkBudget doubled = b;
  doubled.path_loss.loss_at_ref_db = 2.0 * b.path_loss.loss_at_ref_db;
  doubled.path_loss.exponent = 2.0 * b.path_loss.exponent;
  EXPECT_NEAR(
      backscatter_bit_error_rate_at(b, Modulation::backscatter(), d, 0.0),
      bit_error_rate_at(doubled, Modulation::backscatter(), d), 1e-12);
}

TEST(Backscatter, TagLossDegradesBer) {
  const LinkBudget b{dbm_to_watt(33.0), PathLossModel::free_space(), 1_MHz,
                     10.0};
  const u::Length d(6.0);
  double prev = 0.0;
  for (const double loss : {0.0, 6.0, 12.0, 20.0}) {
    const double ber =
        backscatter_bit_error_rate_at(b, Modulation::backscatter(), d, loss);
    EXPECT_GE(ber, prev) << "tag loss " << loss << " dB";
    prev = ber;
  }
  EXPECT_THROW(backscatter_bit_error_rate_at(b, Modulation::backscatter(), d,
                                             -1.0),
               std::invalid_argument);
}

TEST(Backscatter, FallsOffMuchFasterThanOneWay) {
  // Paying the channel out and back: between 2 m and 10 m the monostatic
  // link must lose more dB than the one-way link, so its BER crosses the
  // coin-flip regime while the one-way link still decodes.
  const LinkBudget b{dbm_to_watt(33.0), PathLossModel::indoor(), 1_MHz, 10.0};
  const double near = backscatter_bit_error_rate_at(
      b, Modulation::backscatter(), u::Length(2.0), 12.0);
  const double far = backscatter_bit_error_rate_at(
      b, Modulation::backscatter(), u::Length(10.0), 12.0);
  const double far_one_way =
      bit_error_rate_at(b, Modulation::ook(), u::Length(10.0));
  EXPECT_LT(near, 1e-6);
  EXPECT_GT(far, far_one_way);
  EXPECT_LE(far, 0.5);
}

TEST(Backscatter, ModulationEntryDetectsAsNoncoherentOok) {
  // The BACKSCATTER entry shares OOK's noncoherent detector: same AWGN
  // curve at equal Eb/N0, but a stiffer required_ebn0_db for link budgets.
  const double ebn0 = std::pow(10.0, 12.0 / 10.0);
  EXPECT_DOUBLE_EQ(bit_error_rate(Modulation::backscatter(), ebn0),
                   bit_error_rate(Modulation::ook(), ebn0));
  EXPECT_GT(Modulation::backscatter().required_ebn0_db,
            Modulation::ook().required_ebn0_db);
  EXPECT_DOUBLE_EQ(Modulation::backscatter().bits_per_symbol, 1.0);
}

TEST(Backscatter, TagPresetClosesAtRoomRange) {
  // The backscatter_tag() preset prices a 2 W illuminator monostatically:
  // usable in a room, dead across a warehouse.
  const RadioParams tag = backscatter_tag();
  const LinkBudget b{tag.tx_radiated, tag.environment, tag.bandwidth, 10.0};
  const double near = backscatter_bit_error_rate_at(
      b, tag.modulation, u::Length(3.0), 15.0);
  const double far = backscatter_bit_error_rate_at(
      b, tag.modulation, u::Length(60.0), 15.0);
  EXPECT_LT(near, 1e-3);
  EXPECT_GT(far, 0.1);
}
