#include "ambisim/radio/transceiver.hpp"

#include <gtest/gtest.h>

using namespace ambisim::radio;
namespace u = ambisim::units;
using namespace ambisim::units::literals;

TEST(Radio, TxPowerIsElectronicsPlusPa) {
  const RadioModel r(bluetooth_like());
  const auto& p = r.params();
  EXPECT_NEAR(r.tx_power().value(),
              p.tx_electronics.value() +
                  p.tx_radiated.value() / p.pa_efficiency,
              1e-12);
}

TEST(Radio, StateOrdering) {
  for (const auto& params : {ulp_radio(), bluetooth_like(), wlan_80211b()}) {
    const RadioModel r(params);
    EXPECT_LT(r.power(RadioState::Sleep), r.power(RadioState::Idle))
        << params.name;
    EXPECT_LT(r.power(RadioState::Idle), r.power(RadioState::Rx))
        << params.name;
    EXPECT_LT(r.power(RadioState::Rx), r.power(RadioState::Tx))
        << params.name;
  }
}

TEST(Radio, EnergiesLinearInPayload) {
  const RadioModel r(ulp_radio());
  EXPECT_NEAR(r.tx_energy(2048_bit).value(),
              2.0 * r.tx_energy(1024_bit).value(), 1e-15);
  EXPECT_NEAR(r.rx_energy(2048_bit).value(),
              2.0 * r.rx_energy(1024_bit).value(), 1e-15);
  EXPECT_THROW(r.time_on_air(u::Information(-1.0)), std::invalid_argument);
}

TEST(Radio, TimeOnAirMatchesBitRate) {
  const RadioModel r(bluetooth_like());
  EXPECT_NEAR(r.time_on_air(u::Information(1e6)).value(), 1.0, 1e-9);
}

TEST(Radio, EnergyPerBitConsistency) {
  const RadioModel r(wlan_80211b());
  EXPECT_NEAR(r.energy_per_bit_tx().value(),
              r.tx_energy(1.0_bit).value(), 1e-18);
  EXPECT_NEAR(r.energy_per_bit_rx().value(),
              r.rx_energy(1.0_bit).value(), 1e-18);
}

TEST(Radio, PresetClassesScaleUp) {
  const RadioModel ulp(ulp_radio()), bt(bluetooth_like()),
      wlan(wlan_80211b());
  // Bit rates ascend by device class.
  EXPECT_LT(ulp.params().bit_rate, bt.params().bit_rate);
  EXPECT_LT(bt.params().bit_rate, wlan.params().bit_rate);
  // So do transmit powers.
  EXPECT_LT(ulp.tx_power(), bt.tx_power());
  EXPECT_LT(bt.tx_power(), wlan.tx_power());
}

TEST(Radio, EnergyPerBitGrowsWithRangeClass) {
  // Across the presets the PA term (range) grows faster than the bit rate,
  // so transmit energy per bit *rises* from the short-range microWatt radio
  // to the long-range WLAN — the reason autonomous nodes talk over meters.
  const RadioModel ulp(ulp_radio()), bt(bluetooth_like()),
      wlan(wlan_80211b());
  EXPECT_LT(ulp.energy_per_bit_tx().value(),
            bt.energy_per_bit_tx().value());
  EXPECT_LT(bt.energy_per_bit_tx().value(),
            wlan.energy_per_bit_tx().value());
}

TEST(Radio, RangeCoversRoomScale) {
  const RadioModel ulp(ulp_radio());
  EXPECT_GT(ulp.max_range().value(), 3.0);   // crosses a room
  EXPECT_TRUE(ulp.reaches(u::Length(3.0)));
  const RadioModel wlan(wlan_80211b());
  EXPECT_GT(wlan.max_range().value(), ulp.max_range().value());
}

TEST(Radio, StartupEnergyPositive) {
  const RadioModel r(ulp_radio());
  EXPECT_GT(r.startup_energy().value(), 0.0);
  EXPECT_NEAR(r.startup_energy().value(),
              r.idle_power().value() * r.params().startup.value(), 1e-15);
}

TEST(Radio, ParameterValidation) {
  auto p = ulp_radio();
  p.bit_rate = u::BitRate(0.0);
  EXPECT_THROW(RadioModel{p}, std::invalid_argument);
  p = ulp_radio();
  p.pa_efficiency = 1.5;
  EXPECT_THROW(RadioModel{p}, std::invalid_argument);
  p = ulp_radio();
  p.idle_power = u::Power(0.0);  // below sleep
  EXPECT_THROW(RadioModel{p}, std::invalid_argument);
}

TEST(Radio, StateNames) {
  EXPECT_EQ(to_string(RadioState::Sleep), "sleep");
  EXPECT_EQ(to_string(RadioState::Idle), "idle");
  EXPECT_EQ(to_string(RadioState::Rx), "rx");
  EXPECT_EQ(to_string(RadioState::Tx), "tx");
}
