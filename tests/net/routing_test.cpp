#include "ambisim/net/routing.hpp"

#include <gtest/gtest.h>

using namespace ambisim;
namespace u = ambisim::units;
using net::LinkEnergyModel;
using net::RoutingTree;
using net::Topology;

TEST(LinkEnergyModel, CostGrowsWithDistancePower) {
  const LinkEnergyModel m{50e-9, 10e-12, 2.0};
  EXPECT_NEAR(m.cost(u::Length(0.0)), 50e-9, 1e-18);
  EXPECT_NEAR(m.cost(u::Length(10.0)), 50e-9 + 10e-12 * 100.0, 1e-18);
  EXPECT_THROW(m.cost(u::Length(-1.0)), std::invalid_argument);
}

TEST(MinHopRouting, StarIsSingleHop) {
  const auto t = Topology::star(6, u::Length(5.0));
  const auto tree = net::min_hop_routes(t, u::Length(6.0));
  for (int i = 1; i < t.size(); ++i) {
    EXPECT_EQ(tree.hops[static_cast<std::size_t>(i)], 1);
    EXPECT_EQ(tree.next_hop[static_cast<std::size_t>(i)], 0);
  }
  EXPECT_EQ(tree.hops[0], 0);
  EXPECT_EQ(tree.next_hop[0], 0);
}

TEST(MinHopRouting, GridDistancesAreManhattanHops) {
  // 3x3 grid, range just above pitch: only axis-aligned links.
  const auto t = Topology::grid(9, u::Length(10.0));
  const auto tree = net::min_hop_routes(t, u::Length(10.5));
  // Corner opposite the sink (index 8) is 4 hops away.
  EXPECT_EQ(tree.hops[8], 4);
  EXPECT_EQ(tree.hops[4], 2);
  EXPECT_EQ(tree.hops[1], 1);
}

TEST(MinHopRouting, UnreachableMarked) {
  // Two nodes beyond range of everything.
  Topology t({{0, 0}, {1, 0}, {100, 100}});
  const auto tree = net::min_hop_routes(t, u::Length(5.0));
  EXPECT_TRUE(tree.reachable(1));
  EXPECT_FALSE(tree.reachable(2));
  EXPECT_TRUE(tree.path_from(2).empty());
}

TEST(RoutingTree, PathFromEndsAtSink) {
  sim::Rng rng(3);
  const auto t = Topology::random_field(40, u::Length(40.0), rng);
  const auto tree = net::min_hop_routes(t, u::Length(18.0));
  for (int i = 0; i < t.size(); ++i) {
    if (!tree.reachable(i)) continue;
    const auto path = tree.path_from(i);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), i);
    EXPECT_EQ(path.back(), 0);
    EXPECT_EQ(static_cast<int>(path.size()) - 1,
              tree.hops[static_cast<std::size_t>(i)]);
  }
}

TEST(RoutingTree, RelayLoadCountsDescendants) {
  // Chain: 0 - 1 - 2 - 3 (range 1.5, spacing 1).
  Topology t({{0, 0}, {1, 0}, {2, 0}, {3, 0}});
  const auto tree = net::min_hop_routes(t, u::Length(1.5));
  const auto load = tree.relay_load();
  EXPECT_EQ(load[1], 2);  // relays for 2 and 3
  EXPECT_EQ(load[2], 1);  // relays for 3
  EXPECT_EQ(load[3], 0);
  EXPECT_EQ(load[0], 0);  // the sink is not a relay
}

TEST(MinEnergyRouting, PrefersShortHopsWhenAmpDominates) {
  // 0 at origin, 2 at distance 10, 1 halfway.  With a strong amplifier
  // term, 2 should route through 1 rather than directly.
  Topology t({{0, 0}, {5, 0}, {10, 0}});
  const LinkEnergyModel expensive{1e-9, 1e-9, 2.0};
  const auto tree = net::min_energy_routes(t, u::Length(12.0), expensive);
  EXPECT_EQ(tree.next_hop[2], 1);
  EXPECT_EQ(tree.hops[2], 2);

  // With a dominant electronics term, the direct hop wins.
  const LinkEnergyModel cheap{1e-3, 1e-12, 2.0};
  const auto direct = net::min_energy_routes(t, u::Length(12.0), cheap);
  EXPECT_EQ(direct.next_hop[2], 0);
  EXPECT_EQ(direct.hops[2], 1);
}

TEST(MinEnergyRouting, CostIsMinimal) {
  sim::Rng rng(7);
  const auto t = Topology::random_field(30, u::Length(30.0), rng);
  const LinkEnergyModel m{50e-9, 100e-12, 2.0};
  const auto me = net::min_energy_routes(t, u::Length(15.0), m);
  const auto mh = net::min_hop_routes(t, u::Length(15.0));
  // Recompute the energy of the min-hop tree and compare.
  for (int i = 1; i < t.size(); ++i) {
    if (!mh.reachable(i) || !me.reachable(i)) continue;
    const auto path = mh.path_from(i);
    double hop_tree_cost = 0.0;
    for (std::size_t k = 0; k + 1 < path.size(); ++k) {
      hop_tree_cost += m.cost(t.node_distance(path[k], path[k + 1]));
    }
    EXPECT_LE(me.cost[static_cast<std::size_t>(i)],
              hop_tree_cost * (1.0 + 1e-12))
        << "node " << i;
  }
}

TEST(MinHopRouting, CostIsMinimalHops) {
  sim::Rng rng(13);
  const auto t = Topology::random_field(25, u::Length(30.0), rng);
  const LinkEnergyModel m;
  const auto mh = net::min_hop_routes(t, u::Length(15.0));
  const auto me = net::min_energy_routes(t, u::Length(15.0), m);
  for (int i = 1; i < t.size(); ++i) {
    if (!mh.reachable(i) || !me.reachable(i)) continue;
    EXPECT_LE(mh.hops[static_cast<std::size_t>(i)],
              me.hops[static_cast<std::size_t>(i)]);
  }
}

// Property: both routing policies reach exactly the connected component of
// the sink, for a range of seeds.
class RoutingReachability : public ::testing::TestWithParam<unsigned> {};

TEST_P(RoutingReachability, PoliciesAgreeOnReachability) {
  sim::Rng rng(GetParam());
  const auto t = Topology::random_field(35, u::Length(45.0), rng);
  const u::Length range(14.0);
  const auto mh = net::min_hop_routes(t, range);
  const auto me = net::min_energy_routes(t, range, LinkEnergyModel{});
  for (int i = 0; i < t.size(); ++i) {
    EXPECT_EQ(mh.reachable(i), me.reachable(i)) << "node " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingReachability,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u));

TEST(MultihopEnergy, ClosedFormOptimumForSquareLaw) {
  // n = 2: k* = D * sqrt(k_amp / k_elec).
  const LinkEnergyModel m{1e-7, 1e-9, 2.0};
  const u::Length d(1000.0);
  const int k = net::optimal_hop_count(m, d);
  const double k_star = 1000.0 * std::sqrt(1e-9 / 1e-7);
  EXPECT_NEAR(k, k_star, 1.0);
  // The optimum beats both neighbours and the direct hop.
  EXPECT_LE(net::multihop_energy(m, d, k), net::multihop_energy(m, d, k + 1));
  if (k > 1)
    EXPECT_LE(net::multihop_energy(m, d, k),
              net::multihop_energy(m, d, k - 1));
  EXPECT_LT(net::multihop_energy(m, d, k), net::multihop_energy(m, d, 1));
}

TEST(MultihopEnergy, ShortDistanceSingleHop) {
  const LinkEnergyModel m{1e-7, 1e-12, 2.0};
  EXPECT_EQ(net::optimal_hop_count(m, u::Length(5.0)), 1);
  // Linear-or-less path loss never rewards splitting.
  const LinkEnergyModel linear{1e-7, 1e-9, 1.0};
  EXPECT_EQ(net::optimal_hop_count(linear, u::Length(1e6)), 1);
}

TEST(MultihopEnergy, OptimalHopsGrowLinearlyWithDistance) {
  const LinkEnergyModel m{1e-7, 1e-9, 2.0};
  const int k1 = net::optimal_hop_count(m, u::Length(500.0));
  const int k2 = net::optimal_hop_count(m, u::Length(1000.0));
  EXPECT_NEAR(static_cast<double>(k2), 2.0 * k1, 2.0);
}

TEST(MultihopEnergy, Validation) {
  const LinkEnergyModel m;
  EXPECT_THROW(net::multihop_energy(m, u::Length(10.0), 0),
               std::invalid_argument);
  EXPECT_THROW(net::multihop_energy(m, u::Length(0.0), 1),
               std::invalid_argument);
  EXPECT_THROW(net::optimal_hop_count(m, u::Length(-1.0)),
               std::invalid_argument);
}

// --- down-mask overloads: routing re-convergence around dead nodes ---

TEST(DownMaskRouting, MidTreeDeathReroutesItsSubtree) {
  // 3x3 grid, pitch 10, range covers only axis-aligned links:
  //   6 7 8
  //   3 4 5
  //   0 1 2     (sink = 0)
  // Kill node 1.  Its subtree (2, and anything routing via 1) must come
  // back through column 0 instead of black-holing.
  const auto t = Topology::grid(9, u::Length(10.0));
  const u::Length range(10.5);
  const auto healthy = net::min_hop_routes(t, range);
  ASSERT_TRUE(healthy.reachable(2));

  std::vector<std::uint8_t> down(9, 0);
  down[1] = 1;
  const auto tree = net::min_hop_routes(t, range, down);

  // The dead node is marked unreachable and nobody routes through it.
  EXPECT_FALSE(tree.reachable(1));
  for (int i = 0; i < 9; ++i) EXPECT_NE(tree.next_hop[i], 1);
  // 2 still reaches the sink, around the hole: 2-5-4-3-0 (4 hops).
  ASSERT_TRUE(tree.reachable(2));
  EXPECT_EQ(tree.hops[2], 4);
  const auto path = tree.path_from(2);
  EXPECT_EQ(path.front(), 2);
  EXPECT_EQ(path.back(), 0);
  for (int v : path) EXPECT_NE(v, 1);
}

TEST(DownMaskRouting, EmptyMaskMatchesBaseOverload) {
  sim::Rng rng(99);
  const auto t = Topology::random_field(30, u::Length(40.0), rng);
  const u::Length range(15.0);
  const auto base = net::min_hop_routes(t, range);
  const auto masked =
      net::min_hop_routes(t, range, std::vector<std::uint8_t>(30, 0));
  EXPECT_EQ(base.next_hop, masked.next_hop);
  EXPECT_EQ(base.hops, masked.hops);

  const LinkEnergyModel m{50e-9, 10e-12, 2.0};
  const auto ebase = net::min_energy_routes(t, range, m);
  const auto emasked = net::min_energy_routes(
      t, range, m, std::vector<std::uint8_t>(30, 0));
  EXPECT_EQ(ebase.next_hop, emasked.next_hop);
  EXPECT_EQ(ebase.cost, emasked.cost);
}

TEST(DownMaskRouting, DeadSinkStrandsEveryone) {
  const auto t = Topology::star(5, u::Length(5.0));
  std::vector<std::uint8_t> down(5, 0);
  down[0] = 1;
  const auto tree = net::min_hop_routes(t, u::Length(6.0), down);
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(tree.reachable(i));
  const LinkEnergyModel m{50e-9, 10e-12, 2.0};
  const auto etree = net::min_energy_routes(t, u::Length(6.0), m, down);
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(etree.reachable(i));
}

TEST(DownMaskRouting, MinEnergyAvoidsDeadRelay) {
  // Three colinear nodes: 0 (sink) -- 1 -- 2, square-law loss makes two
  // short hops cheaper than one long direct shot.
  const Topology t({{0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}});
  const LinkEnergyModel m{50e-9, 1e-9, 2.0};
  const u::Length range(25.0);
  const auto via = net::min_energy_routes(t, range, m);
  EXPECT_EQ(via.next_hop[2], 1);
  std::vector<std::uint8_t> down(3, 0);
  down[1] = 1;
  const auto direct = net::min_energy_routes(t, range, m, down);
  EXPECT_EQ(direct.next_hop[2], 0);  // forced onto the long hop
  EXPECT_GT(direct.cost[2], via.cost[2]);
}

TEST(DownMaskRouting, MaskSizeMismatchRejected) {
  const auto t = Topology::star(5, u::Length(5.0));
  EXPECT_THROW(net::min_hop_routes(t, u::Length(6.0),
                                   std::vector<std::uint8_t>(4, 0)),
               std::invalid_argument);
  const LinkEnergyModel m;
  EXPECT_THROW(net::min_energy_routes(t, u::Length(6.0), m,
                                      std::vector<std::uint8_t>(6, 0)),
               std::invalid_argument);
}
