#include "ambisim/net/topology.hpp"

#include <gtest/gtest.h>

using namespace ambisim;
namespace u = ambisim::units;
using net::Point;
using net::Topology;

TEST(Topology, RandomFieldStaysInBounds) {
  sim::Rng rng(5);
  const auto t = Topology::random_field(60, u::Length(40.0), rng);
  EXPECT_EQ(t.size(), 60);
  for (const auto& p : t.positions()) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 40.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 40.0);
  }
  // Sink at the center.
  EXPECT_DOUBLE_EQ(t.position(0).x, 20.0);
  EXPECT_DOUBLE_EQ(t.position(0).y, 20.0);
}

TEST(Topology, DistanceIsEuclidean) {
  EXPECT_DOUBLE_EQ(net::distance({0, 0}, {3, 4}).value(), 5.0);
  EXPECT_DOUBLE_EQ(net::distance({1, 1}, {1, 1}).value(), 0.0);
}

TEST(Topology, GridHasUniformPitch) {
  const auto t = Topology::grid(9, u::Length(10.0));
  EXPECT_EQ(t.size(), 9);
  EXPECT_DOUBLE_EQ(t.node_distance(0, 1).value(), 10.0);
  EXPECT_DOUBLE_EQ(t.node_distance(0, 3).value(), 10.0);
  EXPECT_DOUBLE_EQ(t.node_distance(0, 4).value(), std::sqrt(200.0));
}

TEST(Topology, StarAllLeavesAtRadius) {
  const auto t = Topology::star(7, u::Length(5.0));
  for (int i = 1; i < t.size(); ++i) {
    EXPECT_NEAR(t.node_distance(0, i).value(), 5.0, 1e-9);
  }
}

TEST(Topology, AdjacencyIsSymmetric) {
  sim::Rng rng(9);
  const auto t = Topology::random_field(30, u::Length(30.0), rng);
  const auto adj = t.adjacency(u::Length(12.0));
  for (int i = 0; i < t.size(); ++i) {
    for (int j : adj[static_cast<std::size_t>(i)]) {
      bool back = false;
      for (int k : adj[static_cast<std::size_t>(j)]) {
        if (k == i) back = true;
      }
      EXPECT_TRUE(back) << i << " -> " << j;
      EXPECT_LE(t.node_distance(i, j).value(), 12.0);
      EXPECT_NE(i, j);
    }
  }
}

TEST(Topology, ConnectivityMonotoneInRange) {
  sim::Rng rng(11);
  const auto t = Topology::random_field(40, u::Length(40.0), rng);
  bool was_connected = false;
  for (double r : {5.0, 10.0, 20.0, 40.0, 60.0}) {
    const bool now = t.connected(u::Length(r));
    if (was_connected) EXPECT_TRUE(now) << "connectivity lost at " << r;
    was_connected = was_connected || now;
  }
  EXPECT_TRUE(t.connected(u::Length(60.0)));  // diameter bound
}

TEST(Topology, StarConnectivityExactlyAtRadius) {
  const auto t = Topology::star(5, u::Length(8.0));
  EXPECT_FALSE(t.connected(u::Length(7.9)));
  EXPECT_TRUE(t.connected(u::Length(8.1)));
}

TEST(Topology, Validation) {
  sim::Rng rng(1);
  EXPECT_THROW(Topology::random_field(0, u::Length(10.0), rng),
               std::invalid_argument);
  EXPECT_THROW(Topology::random_field(5, u::Length(0.0), rng),
               std::invalid_argument);
  EXPECT_THROW(Topology::grid(5, u::Length(-1.0)), std::invalid_argument);
  EXPECT_THROW(Topology::star(3, u::Length(0.0)), std::invalid_argument);
  EXPECT_THROW(Topology({}), std::invalid_argument);
  const auto t = Topology::grid(4, u::Length(1.0));
  EXPECT_THROW(t.adjacency(u::Length(0.0)), std::invalid_argument);
}

TEST(Topology, DeterministicForSeed) {
  sim::Rng a(42), b(42);
  const auto ta = Topology::random_field(20, u::Length(25.0), a);
  const auto tb = Topology::random_field(20, u::Length(25.0), b);
  for (int i = 0; i < ta.size(); ++i) {
    EXPECT_DOUBLE_EQ(ta.position(i).x, tb.position(i).x);
    EXPECT_DOUBLE_EQ(ta.position(i).y, tb.position(i).y);
  }
}
