#include "ambisim/net/spatial_grid.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "ambisim/net/routing.hpp"
#include "ambisim/net/topology.hpp"
#include "ambisim/sim/random.hpp"

using namespace ambisim;
namespace u = ambisim::units;
using net::Adjacency;
using net::Point;
using net::SpatialGrid;
using net::Topology;

namespace {

void expect_trees_identical(const net::RoutingTree& a,
                            const net::RoutingTree& b) {
  ASSERT_EQ(a.next_hop.size(), b.next_hop.size());
  EXPECT_EQ(a.next_hop, b.next_hop);
  EXPECT_EQ(a.hops, b.hops);
  ASSERT_EQ(a.cost.size(), b.cost.size());
  // Bitwise, not approximate: the adjacency form must relax the same
  // doubles in the same order as the range form.
  for (std::size_t i = 0; i < a.cost.size(); ++i)
    EXPECT_EQ(a.cost[i], b.cost[i]) << "cost diverges at node " << i;
}

// The grid is an index, not a model: across random fields of every shape
// the grid-backed adjacency must be *byte-identical* to the all-pairs
// oracle — same neighbor sets, same (ascending) order.
TEST(SpatialGrid, AdjacencyMatchesBruteForceOn200RandomFields) {
  sim::Rng rng(20260808);
  auto& eng = rng.engine();
  for (int trial = 0; trial < 200; ++trial) {
    const int n = 1 + static_cast<int>(eng() % 120);
    const double side = 1.0 + static_cast<double>(eng() % 400);
    // Range from a fraction of a cell to spanning the whole field, so the
    // query disc covers 1, 3x3, and many-cell neighborhoods.
    const double range =
        side * (0.02 + 1.2 * rng.uniform());
    sim::Rng field_rng(eng());
    const Topology topo =
        Topology::random_field(n, u::Length(side), field_rng);
    const auto fast = topo.adjacency(u::Length(range));
    const auto oracle = topo.adjacency_bruteforce(u::Length(range));
    ASSERT_EQ(fast, oracle) << "trial " << trial << " n=" << n
                            << " side=" << side << " range=" << range;
  }
}

TEST(SpatialGrid, AllCoincidentCloudCollapsesToOneCell) {
  // Degenerate extent: every point at the same position.  The grid must
  // clamp to a single cell and still answer exactly.
  const Topology topo(std::vector<Point>(17, Point{3.5, -2.0}));
  const auto fast = topo.adjacency(u::Length(1.0));
  EXPECT_EQ(fast, topo.adjacency_bruteforce(u::Length(1.0)));
  for (const auto& row : fast) EXPECT_EQ(row.size(), 16u);
  // Non-positive ranges are rejected by both paths, as before the grid.
  EXPECT_THROW((void)topo.adjacency(u::Length(0.0)), std::invalid_argument);
  EXPECT_THROW((void)topo.adjacency_bruteforce(u::Length(0.0)),
               std::invalid_argument);
}

TEST(SpatialGrid, SingleNodeFieldHasEmptyAdjacency) {
  const Topology topo(std::vector<Point>{{0.0, 0.0}});
  const auto adj = topo.adjacency(u::Length(10.0));
  ASSERT_EQ(adj.size(), 1u);
  EXPECT_TRUE(adj[0].empty());
  EXPECT_TRUE(topo.connected(u::Length(10.0)));
}

TEST(SpatialGrid, HugeExtentToRadiusRatioStaysCappedAndExact) {
  // Points spread over kilometers with a meter-scale range: the naive cell
  // count would explode, so the per-axis cap must bound the directory
  // while queries stay exact.
  sim::Rng rng(7);
  const Topology topo =
      Topology::random_field(300, u::Length(50000.0), rng);
  const SpatialGrid grid(topo.positions(), 1.0);
  EXPECT_LE(grid.cells_x(), SpatialGrid::kMaxCellsPerAxis);
  EXPECT_LE(grid.cells_y(), SpatialGrid::kMaxCellsPerAxis);
  EXPECT_EQ(topo.adjacency(u::Length(2500.0)),
            topo.adjacency_bruteforce(u::Length(2500.0)));
}

TEST(SpatialGrid, DiscQueryMatchesLinearScan) {
  sim::Rng rng(11);
  const Topology topo = Topology::random_field(80, u::Length(60.0), rng);
  const SpatialGrid grid(topo.positions(), 9.0);
  const Point center{31.0, 28.5};
  std::vector<int> got;
  grid.points_within(center, 9.0, got);
  std::vector<int> want;
  for (int j = 0; j < topo.size(); ++j)
    if (net::distance_m(center, topo.position(j)) <= 9.0) want.push_back(j);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, want);
}

TEST(SpatialGrid, NeighborTableMirrorsAdjacencyWithBitwiseDistances) {
  sim::Rng rng(23);
  const Topology topo = Topology::random_field(150, u::Length(80.0), rng);
  const u::Length range(14.0);
  const auto lists = topo.adjacency(range);
  const Adjacency csr = topo.neighbor_table(range);
  ASSERT_EQ(csr.size(), topo.size());
  std::size_t edges = 0;
  for (int i = 0; i < topo.size(); ++i) {
    const Adjacency::Row row = csr.row(i);
    ASSERT_EQ(row.count, lists[static_cast<std::size_t>(i)].size());
    for (std::size_t k = 0; k < row.count; ++k) {
      EXPECT_EQ(row.ids[k], lists[static_cast<std::size_t>(i)][k]);
      // The cached distance must be the same double node_distance returns,
      // or min-energy trees could tip the other way on a tie.
      EXPECT_EQ(row.dist[k],
                topo.node_distance(i, row.ids[k]).value());
    }
    edges += row.count;
  }
  EXPECT_EQ(csr.edge_count(), edges);
  EXPECT_GT(csr.bytes(), 0u);
}

TEST(SpatialGrid, ConnectedOverloadAgreesWithRangeForm) {
  sim::Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    sim::Rng field_rng(rng.engine()());
    const Topology topo =
        Topology::random_field(60, u::Length(70.0), field_rng);
    const u::Length range(4.0 + 2.0 * trial);
    EXPECT_EQ(topo.connected(range),
              topo.connected(topo.neighbor_table(range)));
  }
}

// --- routing over a precomputed adjacency (the re-convergence fast path) ---

TEST(SpatialGrid, RoutingOverAdjacencyBitIdenticalToRangeForm) {
  sim::Rng rng(41);
  const Topology topo = Topology::random_field(120, u::Length(70.0), rng);
  const u::Length range(15.0);
  const Adjacency adj = topo.neighbor_table(range);
  const net::LinkEnergyModel model;

  expect_trees_identical(net::min_hop_routes(topo, range),
                         net::min_hop_routes(topo, adj));
  expect_trees_identical(net::min_energy_routes(topo, range, model),
                         net::min_energy_routes(topo, adj, model));
}

TEST(SpatialGrid, RoutingAroundDownNodesBitIdenticalToRangeForm) {
  sim::Rng rng(43);
  const Topology topo = Topology::random_field(90, u::Length(60.0), rng);
  const u::Length range(14.0);
  const Adjacency adj = topo.neighbor_table(range);
  const net::LinkEnergyModel model;

  std::vector<std::uint8_t> down(static_cast<std::size_t>(topo.size()), 0);
  for (int i = 3; i < topo.size(); i += 7) down[static_cast<std::size_t>(i)] = 1;

  expect_trees_identical(net::min_hop_routes(topo, range, down),
                         net::min_hop_routes(topo, adj, down));
  expect_trees_identical(net::min_energy_routes(topo, range, model, down),
                         net::min_energy_routes(topo, adj, model, down));
}

TEST(SpatialGrid, RejectsBadConstruction) {
  EXPECT_THROW(SpatialGrid(std::vector<Point>{}, 1.0),
               std::invalid_argument);
  EXPECT_THROW(SpatialGrid(std::vector<Point>{{0.0, 0.0}}, 0.0),
               std::invalid_argument);
}

}  // namespace
