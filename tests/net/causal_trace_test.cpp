// Causal packet tracing through the fault-armed packet simulator.
//
// Every generated packet opens a flow (stable per-run id), every
// transmission attempt / corruption / retry is a flow step carrying the
// node it happened at, and delivery or loss closes the flow.  These tests
// run a deliberately hostile network (high corruption so retries are
// guaranteed), export the trace as JSONL, and reconstruct at least one
// packet's full hop/retry chain from the export alone — the acceptance
// criterion for the flight-recorder PR.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "ambisim/net/packet_sim.hpp"
#include "ambisim/obs/obs.hpp"

using namespace ambisim;
namespace u = ambisim::units;

namespace {

net::PacketSimConfig hostile_config() {
  net::PacketSimConfig cfg;
  cfg.node_count = 16;
  cfg.field_side = u::Length(30.0);
  cfg.radio_range = u::Length(14.0);
  cfg.duration = u::Time(400.0);
  cfg.seed = 11;
  net::PacketFaultConfig f;
  f.schedule.seed = 77;
  f.schedule.crash_mttf_s = 600.0;
  f.schedule.crash_mttr_s = 80.0;
  // High corruption so hop retries are statistically certain.
  f.schedule.corruption_rate = 0.25;
  cfg.faults = f;
  return cfg;
}

#if AMBISIM_OBS_COMPILED

/// One parsed trace event (only the fields the causal chain needs).
struct Ev {
  std::string name;
  char ph = '?';
  double ts_us = 0.0;
  std::uint32_t tid = 0;
  double value = 0.0;
  std::uint64_t flow = 0;
};

/// Extract `"key":<number>` from a JSONL line.
double num_field(const std::string& line, const std::string& key) {
  const std::string tag = "\"" + key + "\":";
  const std::size_t pos = line.find(tag);
  EXPECT_NE(pos, std::string::npos) << key << " missing in: " << line;
  if (pos == std::string::npos) return 0.0;
  return std::stod(line.substr(pos + tag.size()));
}

/// Extract `"key":"<string>"` from a JSONL line.
std::string str_field(const std::string& line, const std::string& key) {
  const std::string tag = "\"" + key + "\":\"";
  const std::size_t pos = line.find(tag);
  EXPECT_NE(pos, std::string::npos) << key << " missing in: " << line;
  if (pos == std::string::npos) return {};
  const std::size_t start = pos + tag.size();
  return line.substr(start, line.find('"', start) - start);
}

/// Run the hostile config with probes armed in an isolated context and
/// return the flow events per flow id, reconstructed from the JSONL
/// export (not from the in-memory ring) in recording order.
std::map<std::uint64_t, std::vector<Ev>> traced_flows() {
  obs::Context ctx;
  {
    obs::ContextBinding bind(&ctx);
    obs::set_enabled(true);
    net::simulate_packets(hostile_config());
    obs::set_enabled(false);
  }

  std::ostringstream os;
  ctx.tracer.write_jsonl(os);
  EXPECT_EQ(ctx.tracer.dropped(), 0u)
      << "ring wrapped; the chains below would have holes";

  std::map<std::uint64_t, std::vector<Ev>> flows;
  std::istringstream is(os.str());
  for (std::string line; std::getline(is, line);) {
    if (line.empty()) continue;
    Ev e;
    e.name = str_field(line, "name");
    e.ph = str_field(line, "ph")[0];
    e.ts_us = num_field(line, "ts_us");
    e.tid = static_cast<std::uint32_t>(num_field(line, "tid"));
    e.value = num_field(line, "value");
    e.flow = static_cast<std::uint64_t>(num_field(line, "flow"));
    if (e.ph == 's' || e.ph == 't' || e.ph == 'f')
      flows[e.flow].push_back(e);
  }
  return flows;
}

#endif  // AMBISIM_OBS_COMPILED

}  // namespace

// The chain tests need the in-simulator flow probes, which an
// AMBISIM_OBS_DISABLED build compiles out; the disarmed-run test below
// stays valid in both modes.
#if AMBISIM_OBS_COMPILED

TEST(CausalTrace, EveryFlowOpensOnceAndClosesAtMostOnce) {
  const auto flows = traced_flows();
  ASSERT_FALSE(flows.empty());
  for (const auto& [id, evs] : flows) {
    EXPECT_NE(id, 0u);  // flow id 0 is reserved for non-flow events
    int starts = 0, ends = 0;
    for (const Ev& e : evs) {
      starts += e.ph == 's' ? 1 : 0;
      ends += e.ph == 'f' ? 1 : 0;
    }
    EXPECT_EQ(starts, 1) << "flow " << id;
    // A flow still in the air at the horizon never closes; anything else
    // closes exactly once (delivered or lost).
    EXPECT_LE(ends, 1) << "flow " << id;
    EXPECT_EQ(evs.front().ph, 's') << "flow " << id;
  }
}

TEST(CausalTrace, HopChainsAreCausallyContinuous) {
  // Walk every flow's attempts: the first attempt is made by the origin,
  // and every later attempt is made either by the same node (a retry /
  // reroute of a failed hop) or by the previous attempt's target (the
  // packet moved).  Timestamps never go backwards within a flow.
  const auto flows = traced_flows();
  std::size_t checked_attempts = 0;
  for (const auto& [id, evs] : flows) {
    const std::uint32_t origin = evs.front().tid;
    std::uint32_t at = origin;            // node currently holding the packet
    double last_ts = evs.front().ts_us;
    std::uint32_t last_target = origin;
    for (const Ev& e : evs) {
      EXPECT_GE(e.ts_us, last_ts) << "flow " << id;
      last_ts = e.ts_us;
      if (e.name == "hop.attempt") {
        EXPECT_TRUE(e.tid == at || e.tid == last_target)
            << "flow " << id << ": attempt from " << e.tid
            << " but packet was at " << at;
        at = e.tid;
        last_target = static_cast<std::uint32_t>(e.value);
        ++checked_attempts;
      } else if (e.name == "hop.retry" || e.name == "hop.corrupted") {
        // The failure is reported by the node that attempted the hop.
        EXPECT_EQ(e.tid, at) << "flow " << id;
      } else if (e.name == "packet.delivered") {
        EXPECT_EQ(e.tid, origin) << "flow " << id;
      }
    }
  }
  EXPECT_GT(checked_attempts, 0u);
}

TEST(CausalTrace, ReconstructsAFullHopRetryChainForSomePacket) {
  // The headline acceptance check: from the JSONL export alone, find a
  // packet that was retried at least once and still delivered, and
  // reconstruct its complete history origin -> ... -> sink.
  const auto flows = traced_flows();
  bool reconstructed = false;
  for (const auto& [id, evs] : flows) {
    bool retried = false, delivered = false;
    for (const Ev& e : evs) {
      retried = retried || e.name == "hop.retry";
      delivered = delivered || e.name == "packet.delivered";
    }
    if (!(retried && delivered)) continue;

    // Rebuild the hop path: a hop "succeeded" when the next attempt moved
    // to its target (or the flow ended).  Count distinct forward moves and
    // compare with the hop count reported at delivery.
    std::vector<std::uint32_t> path{evs.front().tid};
    double hops_reported = -1.0;
    for (std::size_t i = 0; i < evs.size(); ++i) {
      const Ev& e = evs[i];
      if (e.name == "hop.attempt" &&
          e.tid != path.back())  // the packet advanced to a new holder
        path.push_back(e.tid);
      if (e.name == "packet.delivered") hops_reported = e.value;
    }
    // path holds every node that *transmitted*; the sink itself never
    // transmits, so hops = transmitters seen after the origin + the final
    // hop into the sink.
    ASSERT_GT(hops_reported, 0.0);
    EXPECT_EQ(static_cast<double>(path.size()), hops_reported)
        << "flow " << id;
    reconstructed = true;
    break;
  }
  EXPECT_TRUE(reconstructed)
      << "no retried-yet-delivered packet found; corruption too low?";
}

#endif  // AMBISIM_OBS_COMPILED

TEST(CausalTrace, DisarmedRunEmitsNoFlowEvents) {
  obs::Context ctx;
  {
    obs::ContextBinding bind(&ctx);
    net::simulate_packets(hostile_config());  // probes never armed
  }
  EXPECT_TRUE(ctx.tracer.empty());
  EXPECT_TRUE(ctx.timeline.empty());
}
