#include "ambisim/net/packet_sim.hpp"

#include <gtest/gtest.h>

using namespace ambisim;
namespace u = ambisim::units;
using namespace ambisim::units::literals;
using net::PacketSimConfig;
using net::simulate_packets;

namespace {
PacketSimConfig small_config() {
  PacketSimConfig cfg;
  cfg.node_count = 20;
  cfg.field_side = u::Length(30.0);
  cfg.radio_range = u::Length(15.0);
  cfg.report_period = 10_s;
  cfg.duration = u::Time(600.0);
  cfg.seed = 4;
  return cfg;
}
}  // namespace

TEST(PacketSim, DeliversAlmostAllRoutablePackets) {
  const auto r = simulate_packets(small_config());
  EXPECT_GT(r.generated, 0);
  // Packets injected near the end may still be in flight at the horizon;
  // everything else routable must arrive.
  const auto routable = r.generated - r.undeliverable;
  ASSERT_GT(routable, 0);
  EXPECT_GT(static_cast<double>(r.delivered) / routable, 0.97);
  EXPECT_GE(r.mean_hops, 1.0);
}

TEST(PacketSim, LatencyBoundedByHopsTimesWakeInterval) {
  const auto cfg = small_config();
  const auto r = simulate_packets(cfg);
  ASSERT_FALSE(r.end_to_end_latency.empty());
  // Each hop adds at most wake + airtime + startup (plus queueing).
  const double hop_max = cfg.mac.wake_interval.value() +
                         512.0 / cfg.radio.bit_rate.value() +
                         cfg.radio.startup.value();
  EXPECT_LT(r.end_to_end_latency.median(), 6.0 * hop_max);
  EXPECT_GT(r.end_to_end_latency.min(), 0.0);
}

TEST(PacketSim, MeanPerHopLatencyIsHalfWakeWindow) {
  // With light load and ~1 hop paths, the mean latency approaches
  // (wake/2 + airtime + startup) per hop.
  auto cfg = small_config();
  cfg.field_side = u::Length(10.0);  // everyone one hop from the sink
  const auto r = simulate_packets(cfg);
  ASSERT_FALSE(r.end_to_end_latency.empty());
  EXPECT_NEAR(r.mean_hops, 1.0, 1e-9);
  const double expect = cfg.mac.wake_interval.value() / 2.0 +
                        512.0 / cfg.radio.bit_rate.value() +
                        cfg.radio.startup.value();
  EXPECT_NEAR(r.end_to_end_latency.mean(), expect, expect * 0.2);
}

TEST(PacketSim, QueueingAppearsUnderLoad) {
  auto relaxed = small_config();
  auto stressed = small_config();
  stressed.report_period = 1_s;           // 10x the traffic
  stressed.mac.wake_interval = u::Time(2.0);  // long preambles -> busy tx
  const auto rr = simulate_packets(relaxed);
  const auto rs = simulate_packets(stressed);
  ASSERT_FALSE(rs.queueing_delay.empty());
  EXPECT_GT(rs.queueing_delay.mean(), rr.queueing_delay.mean());
}

TEST(PacketSim, EnergyScalesWithTraffic) {
  auto quiet = small_config();
  auto chatty = small_config();
  chatty.report_period = 2_s;
  const auto rq = simulate_packets(quiet);
  const auto rc = simulate_packets(chatty);
  EXPECT_GT(rc.ledger.of("radio-tx").value(),
            3.0 * rq.ledger.of("radio-tx").value());
  // Baseline listening is traffic-independent.
  EXPECT_NEAR(rc.ledger.of("listen-baseline").value(),
              rq.ledger.of("listen-baseline").value(), 1e-9);
}

TEST(PacketSim, DeterministicForSeed) {
  const auto a = simulate_packets(small_config());
  const auto b = simulate_packets(small_config());
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_DOUBLE_EQ(a.end_to_end_latency.mean(),
                   b.end_to_end_latency.mean());
}

TEST(PacketSim, DisconnectedSourcesCounted) {
  auto cfg = small_config();
  cfg.field_side = u::Length(200.0);  // sparse: some nodes stranded
  cfg.radio_range = u::Length(20.0);
  const auto r = simulate_packets(cfg);
  EXPECT_GT(r.undeliverable, 0);
  EXPECT_EQ(r.generated - r.undeliverable >= r.delivered, true);
}

TEST(PacketSim, Validation) {
  auto cfg = small_config();
  cfg.node_count = 1;
  EXPECT_THROW(simulate_packets(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.duration = u::Time(0.0);
  EXPECT_THROW(simulate_packets(cfg), std::invalid_argument);
}

// Cross-validation: packet-level radio energy per delivered packet agrees
// with the epoch simulator's analytic per-packet cost (tx + rx per hop).
TEST(PacketSim, EnergyPerDeliveredMatchesAnalytic) {
  const auto cfg = small_config();
  const auto r = simulate_packets(cfg);
  ASSERT_GT(r.delivered, 0);
  const radio::RadioModel radio(cfg.radio);
  const u::Energy per_hop =
      cfg.mac.tx_packet_energy(radio, cfg.packet_bits) +
      cfg.mac.rx_packet_energy(radio, cfg.packet_bits);
  const double expected = per_hop.value() * r.mean_hops;
  EXPECT_NEAR(r.energy_per_delivered.value(), expected, expected * 0.15);
}
