#include "ambisim/net/network_sim.hpp"

#include <gtest/gtest.h>

using namespace ambisim;
namespace u = ambisim::units;
using namespace ambisim::units::literals;
using net::SensorNetworkConfig;
using net::simulate_sensor_network;

namespace {
SensorNetworkConfig small_config() {
  SensorNetworkConfig cfg;
  cfg.node_count = 25;
  cfg.field_side = u::Length(30.0);
  cfg.radio_range = u::Length(15.0);
  cfg.report_period = 60_s;
  cfg.seed = 2;
  return cfg;
}
}  // namespace

TEST(SensorNetwork, BasicInvariants) {
  const auto r = simulate_sensor_network(small_config());
  EXPECT_GT(r.first_node_death.value(), 0.0);
  EXPECT_GE(r.half_network_death, r.first_node_death);
  EXPECT_GE(r.simulated, r.half_network_death);
  EXPECT_GT(r.packets_generated, 0);
  EXPECT_GE(r.packets_generated, r.packets_delivered);
  EXPECT_GE(r.delivery_ratio, 0.0);
  EXPECT_LE(r.delivery_ratio, 1.0);
  EXPECT_GE(r.hotspot_factor, 1.0);
  EXPECT_GE(r.mean_hops, 1.0);
}

TEST(SensorNetwork, EnergyAccounting) {
  const auto cfg = small_config();
  const auto r = simulate_sensor_network(cfg);
  ASSERT_EQ(r.energy_spent.size(), static_cast<std::size_t>(cfg.node_count));
  EXPECT_DOUBLE_EQ(r.energy_spent[0], 0.0);  // the sink is mains powered
  for (int i = 1; i < cfg.node_count; ++i) {
    EXPECT_GT(r.energy_spent[static_cast<std::size_t>(i)], 0.0) << i;
  }
  EXPECT_GT(r.ledger.total().value(), 0.0);
  EXPECT_GT(r.ledger.of("listen-baseline").value(), 0.0);
  EXPECT_GT(r.ledger.of("source-tx").value(), 0.0);
}

TEST(SensorNetwork, DeterministicForSeed) {
  const auto a = simulate_sensor_network(small_config());
  const auto b = simulate_sensor_network(small_config());
  EXPECT_DOUBLE_EQ(a.first_node_death.value(), b.first_node_death.value());
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_DOUBLE_EQ(a.hotspot_factor, b.hotspot_factor);
}

TEST(SensorNetwork, MoreTrafficDiesFaster) {
  auto chatty = small_config();
  chatty.report_period = 10_s;
  auto quiet = small_config();
  quiet.report_period = 600_s;
  const auto rc = simulate_sensor_network(chatty);
  const auto rq = simulate_sensor_network(quiet);
  EXPECT_LT(rc.first_node_death.value(), rq.first_node_death.value());
}

TEST(SensorNetwork, BiggerBatteryLastsLonger) {
  auto coin = small_config();
  coin.battery = energy::Battery::coin_cell_cr2032();
  auto aa = small_config();
  aa.battery = energy::Battery::alkaline_aa();
  const auto rc = simulate_sensor_network(coin);
  const auto ra = simulate_sensor_network(aa);
  EXPECT_GT(ra.first_node_death.value(), 2.0 * rc.first_node_death.value());
}

TEST(SensorNetwork, StrongHarvestingMakesNetworkImmortal) {
  auto cfg = small_config();
  cfg.harvest_avg_watt = 5e-3;  // 5 mW dwarfs every node's drain
  cfg.max_sim_time = u::Time(86400.0 * 30);
  const auto r = simulate_sensor_network(cfg);
  EXPECT_DOUBLE_EQ(r.first_node_death.value(), 0.0);
  EXPECT_EQ(r.node_lifetimes.count(), 0u);
  EXPECT_NEAR(r.simulated.value(), 86400.0 * 30, 1.0);
  EXPECT_GT(r.delivery_ratio, 0.99);
}

TEST(SensorNetwork, MaxSimTimeCapsRun) {
  auto cfg = small_config();
  cfg.max_sim_time = 1000_s;
  const auto r = simulate_sensor_network(cfg);
  EXPECT_LE(r.simulated.value(), 1000.0 + 1e-6);
}

TEST(SensorNetwork, Validation) {
  auto cfg = small_config();
  cfg.node_count = 1;
  EXPECT_THROW(simulate_sensor_network(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.report_period = u::Time(0.0);
  EXPECT_THROW(simulate_sensor_network(cfg), std::invalid_argument);
}

TEST(SensorNetwork, LifetimesAreOrderedRecord) {
  const auto r = simulate_sensor_network(small_config());
  ASSERT_GT(r.node_lifetimes.count(), 0u);
  EXPECT_NEAR(r.node_lifetimes.min(), r.first_node_death.value(), 1e-6);
  const auto& v = r.node_lifetimes.values();
  for (std::size_t i = 1; i < v.size(); ++i) EXPECT_GE(v[i], v[i - 1]);
}

// Property: across seeds, the delivery ratio stays valid and the sink is
// never reported dead.
class NetworkSeeds : public ::testing::TestWithParam<unsigned> {};

TEST_P(NetworkSeeds, InvariantsHold) {
  auto cfg = small_config();
  cfg.seed = GetParam();
  cfg.max_sim_time = u::Time(86400.0 * 400);
  const auto r = simulate_sensor_network(cfg);
  EXPECT_GE(r.delivery_ratio, 0.0);
  EXPECT_LE(r.delivery_ratio, 1.0);
  EXPECT_GE(r.hotspot_factor, 1.0);
  EXPECT_LE(r.node_lifetimes.count(),
            static_cast<std::size_t>(cfg.node_count - 1));
  EXPECT_DOUBLE_EQ(r.energy_spent[0], 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkSeeds,
                         ::testing::Values(1u, 7u, 23u, 99u, 1234u));

TEST(SensorNetwork, AggregationExtendsLifetime) {
  auto plain = small_config();
  plain.field_side = u::Length(60.0);  // force multi-hop relaying
  plain.radio_range = u::Length(16.0);
  auto agg = plain;
  agg.aggregate_at_relays = true;
  const auto rp = simulate_sensor_network(plain);
  const auto ra = simulate_sensor_network(agg);
  // Relays no longer retransmit per descendant: the first casualty lives
  // longer and the hot spot flattens.
  EXPECT_GT(ra.first_node_death.value(), rp.first_node_death.value());
  EXPECT_LE(ra.hotspot_factor, rp.hotspot_factor * 1.05);
}
