#include "ambisim/net/contention.hpp"

#include <gtest/gtest.h>

#include <cmath>

using namespace ambisim;
using namespace ambisim::net;
namespace u = ambisim::units;
using namespace ambisim::units::literals;

TEST(Aloha, SlottedPeaksAtOneOverE) {
  EXPECT_NEAR(slotted_aloha_throughput(1.0), 1.0 / std::exp(1.0), 1e-12);
  EXPECT_DOUBLE_EQ(optimal_load_slotted_aloha(), 1.0);
  // Unimodal around the peak.
  EXPECT_LT(slotted_aloha_throughput(0.5),
            slotted_aloha_throughput(1.0));
  EXPECT_LT(slotted_aloha_throughput(2.0),
            slotted_aloha_throughput(1.0));
  EXPECT_DOUBLE_EQ(slotted_aloha_throughput(0.0), 0.0);
}

TEST(Aloha, PurePeaksAtHalfOfSlotted) {
  EXPECT_NEAR(pure_aloha_throughput(0.5), 0.5 / std::exp(1.0), 1e-12);
  EXPECT_DOUBLE_EQ(optimal_load_pure_aloha(), 0.5);
  // Pure ALOHA is everywhere at most slotted ALOHA.
  for (double g = 0.1; g < 5.0; g += 0.3) {
    EXPECT_LE(pure_aloha_throughput(g), slotted_aloha_throughput(g) + 1e-15);
  }
}

TEST(Csma, BeatsAlohaAtLowPropagationDelay) {
  // With a small, CSMA's peak throughput approaches 1.
  const double g_star = optimal_load_csma(0.01);
  const double peak = csma_throughput(g_star, 0.01);
  EXPECT_GT(peak, 0.8);
  EXPECT_GT(peak, slotted_aloha_throughput(1.0));
}

TEST(Csma, DegradesWithPropagationDelay) {
  const double peak_001 = csma_throughput(optimal_load_csma(0.01), 0.01);
  const double peak_01 = csma_throughput(optimal_load_csma(0.1), 0.1);
  const double peak_1 = csma_throughput(optimal_load_csma(1.0), 1.0);
  EXPECT_GT(peak_001, peak_01);
  EXPECT_GT(peak_01, peak_1);
}

TEST(Csma, ZeroLoadZeroThroughput) {
  EXPECT_DOUBLE_EQ(csma_throughput(0.0), 0.0);
  EXPECT_THROW(csma_throughput(-0.1), std::invalid_argument);
  EXPECT_THROW(csma_throughput(1.0, -1.0), std::invalid_argument);
}

TEST(AlohaSim, MatchesAnalyticAcrossLoads) {
  sim::Rng rng(42);
  for (double g : {0.2, 0.5, 1.0, 2.0}) {
    const double analytic = slotted_aloha_throughput(g);
    const double simulated = simulate_slotted_aloha(g, 200, 40'000, rng);
    EXPECT_NEAR(simulated, analytic, 0.015) << "G = " << g;
  }
}

TEST(AlohaSim, Validation) {
  sim::Rng rng(1);
  EXPECT_THROW(simulate_slotted_aloha(-1.0, 10, 100, rng),
               std::invalid_argument);
  EXPECT_THROW(simulate_slotted_aloha(1.0, 0, 100, rng),
               std::invalid_argument);
  EXPECT_THROW(simulate_slotted_aloha(20.0, 10, 100, rng),
               std::invalid_argument);
}

TEST(ReportRate, SharesChannelFairly) {
  const auto r10 = max_report_rate_per_node(10, 100_kbps, 512_bit);
  const auto r100 = max_report_rate_per_node(100, 100_kbps, 512_bit);
  EXPECT_NEAR(r10.value() / r100.value(), 10.0, 1e-9);
  // 100 kbps / 512 bit = 195 slots/s; * 1/e / 10 nodes ~= 7.2 per node.
  EXPECT_NEAR(r10.value(), 100e3 / 512.0 / std::exp(1.0) / 10.0, 1e-6);
  EXPECT_THROW(max_report_rate_per_node(0, 100_kbps, 512_bit),
               std::invalid_argument);
}
