#include "ambisim/net/link_table.hpp"

#include <gtest/gtest.h>

#include "ambisim/net/packet_sim.hpp"

using namespace ambisim;
namespace u = ambisim::units;
using namespace ambisim::units::literals;
using net::LinkTable;
using net::PacketSimConfig;
using net::simulate_packets;
using net::Topology;

namespace {

PacketSimConfig small_config() {
  PacketSimConfig cfg;
  cfg.node_count = 20;
  cfg.field_side = u::Length(30.0);
  cfg.radio_range = u::Length(15.0);
  cfg.report_period = 10_s;
  cfg.duration = u::Time(600.0);
  cfg.seed = 4;
  return cfg;
}

TEST(LinkTable, EntriesBitwiseMatchDirectEvaluation) {
  const Topology topo = Topology::grid(9, u::Length(12.0));
  const radio::RadioModel radio(radio::ulp_radio());
  const u::Information bits(512.0);
  const radio::ArqModel arq;
  const LinkTable table(topo, radio, bits, arq);
  ASSERT_EQ(table.size(), 9);

  const radio::LinkBudget budget = radio.link_budget();
  const radio::Modulation& mod = radio.params().modulation;
  for (int from = 0; from < topo.size(); ++from) {
    for (int to = 0; to < topo.size(); ++to) {
      if (from == to) continue;
      const auto& s = table.edge(from, to);
      const u::Length d = topo.node_distance(from, to);
      // The table is a cache, not an approximation: every field must be
      // the bitwise result of the direct call chain it replaces.
      EXPECT_EQ(s.distance_m, d.value());
      const double ber = radio::bit_error_rate_at(budget, mod, d);
      EXPECT_EQ(s.ber, ber);
      const double per = radio::packet_error_rate(ber, bits.value());
      EXPECT_EQ(s.per, per);
      EXPECT_EQ(s.expected_attempts, arq.expected_attempts(per));
      EXPECT_EQ(s.delivery_probability, arq.delivery_probability(per));
    }
  }
}

TEST(LinkTable, SymmetricInDistanceAndMonotoneInRange) {
  const Topology topo = Topology::star(8, u::Length(40.0));
  const radio::RadioModel radio(radio::ulp_radio());
  const LinkTable table(topo, radio, u::Information(512.0));
  // AWGN quality depends only on distance, so the directed rows agree.
  EXPECT_EQ(table.edge(0, 3).ber, table.edge(3, 0).ber);
  EXPECT_EQ(table.edge(0, 3).per, table.edge(3, 0).per);
  // Spokes sit closer to each other than sink-to-spoke on opposite sides.
  EXPECT_GE(table.edge(1, 5).expected_attempts, 1.0);
  EXPECT_LE(table.edge(1, 5).delivery_probability, 1.0);
}

TEST(LinkTable, SelfEdgesKeepPerfectDefaults) {
  const Topology topo = Topology::grid(4, u::Length(10.0));
  const LinkTable table(topo, radio::RadioModel(radio::ulp_radio()),
                        u::Information(256.0));
  for (int i = 0; i < table.size(); ++i) {
    const auto& s = table.edge(i, i);
    EXPECT_EQ(s.distance_m, 0.0);
    EXPECT_EQ(s.ber, 0.0);
    EXPECT_EQ(s.per, 0.0);
    EXPECT_EQ(s.expected_attempts, 1.0);
    EXPECT_EQ(s.delivery_probability, 1.0);
  }
}

TEST(LinkTable, RejectsNonPositivePacketSize) {
  const Topology topo = Topology::grid(4, u::Length(10.0));
  EXPECT_THROW(LinkTable(topo, radio::RadioModel(radio::ulp_radio()),
                         u::Information(0.0)),
               std::invalid_argument);
}

TEST(LinkTable, DefaultPacketSimReportsPerfectLinks) {
  const auto r = simulate_packets(small_config());
  EXPECT_DOUBLE_EQ(r.mean_link_attempts, 1.0);
}

TEST(LinkTable, LinkErrorModelCostsEnergyWithoutChangingDelivery) {
  const auto base = simulate_packets(small_config());
  auto cfg = small_config();
  cfg.model_link_errors = true;
  const auto lossy = simulate_packets(cfg);

  // The expected-attempts model scales energy and airtime but consumes no
  // extra randomness, so traffic and routing are untouched.
  EXPECT_EQ(lossy.generated, base.generated);
  EXPECT_EQ(lossy.delivered, base.delivered);
  EXPECT_EQ(lossy.undeliverable, base.undeliverable);
  EXPECT_DOUBLE_EQ(lossy.mean_hops, base.mean_hops);

  EXPECT_GE(lossy.mean_link_attempts, 1.0);
  EXPECT_GE(lossy.ledger.of("radio-tx").value(),
            base.ledger.of("radio-tx").value());
  EXPECT_GE(lossy.ledger.of("radio-rx").value(),
            base.ledger.of("radio-rx").value());
}

TEST(LinkTable, LinkErrorModelIsDeterministic) {
  auto cfg = small_config();
  cfg.model_link_errors = true;
  const auto a = simulate_packets(cfg);
  const auto b = simulate_packets(cfg);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_DOUBLE_EQ(a.mean_link_attempts, b.mean_link_attempts);
  EXPECT_DOUBLE_EQ(a.end_to_end_latency.mean(), b.end_to_end_latency.mean());
  EXPECT_DOUBLE_EQ(a.ledger.of("radio-tx").value(),
                   b.ledger.of("radio-tx").value());
}

}  // namespace

// --- monostatic backscatter pricing (the aiot uplink) ---

TEST(LinkTable, MonostaticOptionMatchesBackscatterChain) {
  const Topology topo = Topology::star(6, u::Length(8.0));
  const radio::RadioModel radio(radio::backscatter_tag());
  const u::Information bits(256.0);
  const radio::ArqModel arq;
  net::LinkTableOptions opt;
  opt.model = net::LinkModel::MonostaticBackscatter;
  opt.tag_loss_db = 15.0;
  const LinkTable table(topo, radio, bits, arq, opt);

  const radio::LinkBudget budget = radio.link_budget();
  const radio::Modulation& mod = radio.params().modulation;
  for (int tag = 1; tag < topo.size(); ++tag) {
    const auto& s = table.edge(tag, 0);
    const u::Length d = topo.node_distance(tag, 0);
    // Same cache contract as the two-way table: bitwise equal to the
    // direct monostatic call chain.
    const double ber =
        radio::backscatter_bit_error_rate_at(budget, mod, d, 15.0);
    EXPECT_EQ(s.ber, ber);
    EXPECT_EQ(s.per, radio::packet_error_rate(ber, bits.value()));
    EXPECT_EQ(s.delivery_probability,
              arq.delivery_probability(s.per));
  }
}

TEST(LinkTable, MonostaticIsWorseThanTwoWayAtEqualDistance) {
  const Topology topo = Topology::star(6, u::Length(8.0));
  const radio::RadioModel radio(radio::backscatter_tag());
  const u::Information bits(256.0);
  net::LinkTableOptions mono;
  mono.model = net::LinkModel::MonostaticBackscatter;
  const LinkTable round_trip(topo, radio, bits, radio::ArqModel{}, mono);
  const LinkTable one_way(topo, radio, bits);
  for (int tag = 1; tag < topo.size(); ++tag) {
    EXPECT_GE(round_trip.edge(tag, 0).ber, one_way.edge(tag, 0).ber);
    EXPECT_LE(round_trip.edge(tag, 0).delivery_probability,
              one_way.edge(tag, 0).delivery_probability);
  }
}

TEST(LinkTable, OptionsRejectNegativeTagLoss) {
  const Topology topo = Topology::star(3, u::Length(5.0));
  const radio::RadioModel radio(radio::backscatter_tag());
  net::LinkTableOptions opt;
  opt.tag_loss_db = -1.0;
  EXPECT_THROW(LinkTable(topo, radio, u::Information(256.0),
                         radio::ArqModel{}, opt),
               std::invalid_argument);
}

TEST(LinkTable, DefaultOptionsAreTheTwoWayModel) {
  // The options parameter must be a pure extension: default-constructed
  // options price identically to the pre-options table.
  const Topology topo = Topology::grid(9, u::Length(12.0));
  const radio::RadioModel radio(radio::ulp_radio());
  const LinkTable legacy(topo, radio, u::Information(512.0));
  const LinkTable with_opts(topo, radio, u::Information(512.0),
                            radio::ArqModel{}, net::LinkTableOptions{});
  for (int a = 0; a < topo.size(); ++a)
    for (int b = 0; b < topo.size(); ++b) {
      if (a == b) continue;
      EXPECT_EQ(legacy.edge(a, b).ber, with_opts.edge(a, b).ber);
    }
}
