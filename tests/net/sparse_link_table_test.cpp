#include "ambisim/net/sparse_link_table.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "ambisim/net/link_table.hpp"
#include "ambisim/net/packet_sim.hpp"
#include "ambisim/net/topology.hpp"
#include "ambisim/sim/random.hpp"

using namespace ambisim;
namespace u = ambisim::units;
using net::LinkTable;
using net::PacketSimConfig;
using net::simulate_packets;
using net::SparseLinkTable;
using net::Topology;

namespace {

// Every edge the sparse table materializes must carry the bitwise-same
// stats as the dense oracle; every pair it skips must be out of range.
TEST(SparseLinkTable, StatsBitwiseEqualDenseWithinRange) {
  sim::Rng rng(101);
  const Topology topo = Topology::random_field(60, u::Length(50.0), rng);
  const radio::RadioModel radio(radio::ulp_radio());
  const u::Information bits(512.0);
  const radio::ArqModel arq;
  const u::Length range(15.0);

  const LinkTable dense(topo, radio, bits, arq);
  const SparseLinkTable sparse(topo, radio, bits, range, arq);
  ASSERT_EQ(sparse.size(), topo.size());

  std::size_t in_range = 0;
  for (int from = 0; from < topo.size(); ++from) {
    for (int to = 0; to < topo.size(); ++to) {
      if (from == to) continue;
      const bool within =
          topo.node_distance(from, to).value() <= range.value();
      ASSERT_EQ(sparse.has_edge(from, to), within);
      if (!within) continue;
      ++in_range;
      const net::LinkStats& d = dense.edge(from, to);
      const net::LinkStats s = sparse.edge(from, to);
      EXPECT_EQ(s.distance_m, d.distance_m);
      EXPECT_EQ(s.ber, d.ber);
      EXPECT_EQ(s.per, d.per);
      EXPECT_EQ(s.expected_attempts, d.expected_attempts);
      EXPECT_EQ(s.delivery_probability, d.delivery_probability);
      EXPECT_EQ(sparse.expected_attempts(from, to), d.expected_attempts);
      EXPECT_EQ(sparse.delivery_probability(from, to),
                d.delivery_probability);
    }
  }
  EXPECT_EQ(sparse.edge_count(), in_range);
  // O(edges) memory, not O(n^2): the footprint must track the edge count.
  EXPECT_LT(sparse.bytes(),
            static_cast<std::size_t>(topo.size()) * topo.size() *
                sizeof(net::LinkStats));
}

TEST(SparseLinkTable, SelfEdgesPerfectAbsentEdgesThrow) {
  const Topology topo = Topology::grid(16, u::Length(10.0));
  const radio::RadioModel radio(radio::ulp_radio());
  const SparseLinkTable sparse(topo, radio, u::Information(256.0),
                               u::Length(12.0));
  const net::LinkStats self = sparse.edge(3, 3);
  EXPECT_EQ(self.distance_m, 0.0);
  EXPECT_EQ(self.per, 0.0);
  EXPECT_EQ(self.expected_attempts, 1.0);
  EXPECT_EQ(self.delivery_probability, 1.0);
  // Corner 0 to the far corner is well beyond 12 m: reading an edge the
  // caller chose not to materialize is a logic error, never a silent 0.
  const int far = topo.size() - 1;
  ASSERT_FALSE(sparse.has_edge(0, far));
  EXPECT_THROW((void)sparse.edge(0, far), std::out_of_range);
  EXPECT_THROW((void)sparse.expected_attempts(0, far), std::out_of_range);
  EXPECT_THROW((void)sparse.delivery_probability(0, far),
               std::out_of_range);
  EXPECT_EQ(sparse.find(0, far), -1);
}

TEST(SparseLinkTable, StarMatchesDenseColumnBitwise) {
  // The aiot uplink shape: tags talk only to the gateway.  The star must
  // price hub edges exactly as the dense monostatic table does, including
  // the distance orientation (tag -> gateway and gateway -> tag).
  sim::Rng rng(7);
  const Topology topo = Topology::random_field(40, u::Length(25.0), rng);
  const radio::RadioModel radio(radio::backscatter_tag());
  const u::Information bits(256.0);
  const radio::ArqModel arq;
  net::LinkTableOptions opt;
  opt.model = net::LinkModel::MonostaticBackscatter;
  opt.tag_loss_db = 15.0;

  const LinkTable dense(topo, radio, bits, arq, opt);
  const SparseLinkTable star =
      SparseLinkTable::star(topo, radio, bits, arq, opt, topo.sink());
  EXPECT_EQ(star.edge_count(),
            2u * (static_cast<std::size_t>(topo.size()) - 1u));
  for (int i = 1; i < topo.size(); ++i) {
    const net::LinkStats& up = dense.edge(i, 0);
    const net::LinkStats& down = dense.edge(0, i);
    EXPECT_EQ(star.edge(i, 0).ber, up.ber);
    EXPECT_EQ(star.edge(i, 0).per, up.per);
    EXPECT_EQ(star.delivery_probability(i, 0), up.delivery_probability);
    EXPECT_EQ(star.expected_attempts(0, i), down.expected_attempts);
    // Off-hub edges are never materialized, whatever their length.
    if (i >= 2) {
      EXPECT_FALSE(star.has_edge(1, i));
    }
  }
}

TEST(SparseLinkTable, RejectsBadArguments) {
  const Topology topo = Topology::grid(4, u::Length(10.0));
  const radio::RadioModel radio(radio::ulp_radio());
  EXPECT_THROW(SparseLinkTable(topo, radio, u::Information(0.0),
                               u::Length(10.0)),
               std::invalid_argument);
  net::LinkTableOptions opt;
  opt.tag_loss_db = -1.0;
  EXPECT_THROW(SparseLinkTable(topo, radio, u::Information(256.0),
                               u::Length(10.0), radio::ArqModel{}, opt),
               std::invalid_argument);
}

// --- end-to-end: the sparse_links knob must not move a single bit ---

PacketSimConfig lossy_config() {
  PacketSimConfig cfg;
  cfg.node_count = 40;
  cfg.field_side = u::Length(45.0);
  cfg.radio_range = u::Length(15.0);
  cfg.duration = u::Time(1200.0);
  cfg.seed = 9;
  cfg.model_link_errors = true;
  return cfg;
}

void expect_results_identical(const net::PacketSimResult& a,
                              const net::PacketSimResult& b) {
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.undeliverable, b.undeliverable);
  EXPECT_EQ(a.mean_hops, b.mean_hops);
  EXPECT_EQ(a.mean_link_attempts, b.mean_link_attempts);
  EXPECT_EQ(a.end_to_end_latency.mean(), b.end_to_end_latency.mean());
  EXPECT_EQ(a.queueing_delay.mean(), b.queueing_delay.mean());
  EXPECT_EQ(a.ledger.of("radio-tx").value(), b.ledger.of("radio-tx").value());
  EXPECT_EQ(a.ledger.of("radio-rx").value(), b.ledger.of("radio-rx").value());
  EXPECT_EQ(a.energy_per_delivered.value(), b.energy_per_delivered.value());
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.lost_in_flight, b.lost_in_flight);
  EXPECT_EQ(a.lost_no_route, b.lost_no_route);
  EXPECT_EQ(a.reroutes, b.reroutes);
  EXPECT_EQ(a.final_soc, b.final_soc);
}

TEST(SparseLinkTable, PacketSimSparseBitIdenticalToDense) {
  PacketSimConfig dense_cfg = lossy_config();
  PacketSimConfig sparse_cfg = lossy_config();
  sparse_cfg.sparse_links = true;
  for (const auto routing :
       {net::RoutingPolicy::MinHop, net::RoutingPolicy::MinEnergy}) {
    dense_cfg.routing = routing;
    sparse_cfg.routing = routing;
    expect_results_identical(simulate_packets(dense_cfg),
                             simulate_packets(sparse_cfg));
  }
}

TEST(SparseLinkTable, PacketSimSparseBitIdenticalToDenseUnderFaults) {
  // Faults exercise the cached-adjacency reroute path: lifecycle edges
  // re-converge routing through the down mask, and retried hops read the
  // sparse stats.  Everything must still match the dense run exactly.
  PacketSimConfig dense_cfg = lossy_config();
  net::PacketFaultConfig fc;
  fc.schedule.crash_mttf_s = 400.0;
  fc.schedule.crash_mttr_s = 60.0;
  fc.schedule.link_mtbf_s = 500.0;
  fc.schedule.link_mttr_s = 30.0;
  fc.schedule.seed = 77;
  dense_cfg.faults = fc;
  PacketSimConfig sparse_cfg = dense_cfg;
  sparse_cfg.sparse_links = true;
  const auto dense = simulate_packets(dense_cfg);
  const auto sparse = simulate_packets(sparse_cfg);
  expect_results_identical(dense, sparse);
  EXPECT_GT(dense.reroutes, 0);
}

}  // namespace
