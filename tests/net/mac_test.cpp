#include "ambisim/net/mac.hpp"

#include <gtest/gtest.h>

#include "ambisim/net/topology.hpp"

using namespace ambisim;
namespace u = ambisim::units;
using namespace ambisim::units::literals;
using net::DutyCycledMac;
using net::TdmaSchedule;

namespace {
radio::RadioModel ulp() { return radio::RadioModel(radio::ulp_radio()); }
}  // namespace

TEST(DutyCycledMac, DutyIsRatio) {
  const DutyCycledMac mac{1_s, 10_ms};
  EXPECT_DOUBLE_EQ(mac.duty(), 0.01);
}

TEST(DutyCycledMac, ValidationRejectsBadShapes) {
  EXPECT_THROW((DutyCycledMac{u::Time(0.0), 10_ms}).duty(),
               std::logic_error);
  EXPECT_THROW((DutyCycledMac{1_s, u::Time(0.0)}).duty(), std::logic_error);
  EXPECT_THROW((DutyCycledMac{10_ms, 1_s}).duty(), std::logic_error);
}

TEST(DutyCycledMac, BaselineBetweenSleepAndIdle) {
  const auto r = ulp();
  const DutyCycledMac mac{1_s, 10_ms};
  const auto p = mac.baseline_power(r);
  EXPECT_GT(p, r.sleep_power());
  EXPECT_LT(p, r.idle_power());
  // Exact mixture.
  EXPECT_NEAR(p.value(),
              0.01 * r.idle_power().value() +
                  0.99 * r.sleep_power().value(),
              1e-15);
}

TEST(DutyCycledMac, LongerWakeIntervalCostsSenderMore) {
  // The B-MAC trade: longer wake intervals mean longer preambles.
  const auto r = ulp();
  const DutyCycledMac fast{0.1_s, 5_ms};
  const DutyCycledMac slow{2.0_s, 5_ms};
  EXPECT_LT(fast.tx_packet_energy(r, 512_bit),
            slow.tx_packet_energy(r, 512_bit));
  // ...but costs every listener less baseline power.
  EXPECT_GT(fast.baseline_power(r), slow.baseline_power(r));
}

TEST(DutyCycledMac, RxCostsLessThanTx) {
  const auto r = ulp();
  const DutyCycledMac mac{1_s, 10_ms};
  EXPECT_LT(mac.rx_packet_energy(r, 512_bit),
            mac.tx_packet_energy(r, 512_bit));
}

TEST(DutyCycledMac, HopLatencyBoundedByWakeInterval) {
  const auto r = ulp();
  const DutyCycledMac mac{1_s, 10_ms};
  const auto lat = mac.hop_latency(r, 512_bit);
  EXPECT_GT(lat, 1_s);  // at least the wake interval
  EXPECT_LT(lat.value(), 1.1);  // plus small airtime/startup
}

TEST(TdmaSchedule, ChainUsesFewSlots) {
  // Chain 0-1-2-3-4: 2-hop coloring needs 3 slots.
  const std::vector<std::vector<int>> chain{
      {1}, {0, 2}, {1, 3}, {2, 4}, {3}};
  const auto s = TdmaSchedule::build(chain);
  EXPECT_TRUE(s.collision_free(chain));
  EXPECT_EQ(s.frame_slots(), 3);
  EXPECT_NEAR(s.per_node_share(), 1.0 / 3.0, 1e-12);
}

TEST(TdmaSchedule, StarNeedsOneSlotPerLeaf) {
  // All leaves conflict through the hub: every node distinct.
  const std::vector<std::vector<int>> star{
      {1, 2, 3, 4}, {0}, {0}, {0}, {0}};
  const auto s = TdmaSchedule::build(star);
  EXPECT_TRUE(s.collision_free(star));
  EXPECT_EQ(s.frame_slots(), 5);
}

TEST(TdmaSchedule, IsolatedNodesShareSlotZero) {
  const std::vector<std::vector<int>> isolated{{}, {}, {}};
  const auto s = TdmaSchedule::build(isolated);
  EXPECT_TRUE(s.collision_free(isolated));
  EXPECT_EQ(s.frame_slots(), 1);
}

TEST(TdmaSchedule, EmptyRejected) {
  EXPECT_THROW(TdmaSchedule::build({}), std::invalid_argument);
}

TEST(TdmaSchedule, CollisionFreeDetectsViolations) {
  const std::vector<std::vector<int>> chain{{1}, {0, 2}, {1}};
  auto good = TdmaSchedule::build(chain);
  EXPECT_TRUE(good.collision_free(chain));
  // A schedule from a different topology should fail the check.
  const std::vector<std::vector<int>> other{{1, 2}, {0, 2}, {0, 1}};
  EXPECT_FALSE(TdmaSchedule::build({{}, {}, {}}).collision_free(other));
}

// Property: greedy coloring is collision-free on random geometric graphs of
// various densities and the frame is no longer than the largest 2-hop
// neighbourhood + 1.
struct TdmaCase {
  unsigned seed;
  int nodes;
  double range;
};

class TdmaOnRandomGraphs : public ::testing::TestWithParam<TdmaCase> {};

TEST_P(TdmaOnRandomGraphs, CollisionFreeAndBounded) {
  sim::Rng rng(GetParam().seed);
  const auto topo = net::Topology::random_field(
      GetParam().nodes, u::Length(50.0), rng);
  const auto adj = topo.adjacency(u::Length(GetParam().range));
  const auto s = TdmaSchedule::build(adj);
  EXPECT_TRUE(s.collision_free(adj));

  // Bound: frame slots <= max 2-hop neighbourhood size + 1.
  std::size_t max_conflicts = 0;
  for (int v = 0; v < topo.size(); ++v) {
    std::vector<bool> seen(static_cast<std::size_t>(topo.size()), false);
    seen[static_cast<std::size_t>(v)] = true;
    std::size_t c = 0;
    for (int w : adj[static_cast<std::size_t>(v)]) {
      if (!seen[static_cast<std::size_t>(w)]) {
        seen[static_cast<std::size_t>(w)] = true;
        ++c;
      }
      for (int x : adj[static_cast<std::size_t>(w)]) {
        if (!seen[static_cast<std::size_t>(x)]) {
          seen[static_cast<std::size_t>(x)] = true;
          ++c;
        }
      }
    }
    max_conflicts = std::max(max_conflicts, c);
  }
  EXPECT_LE(static_cast<std::size_t>(s.frame_slots()), max_conflicts + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Densities, TdmaOnRandomGraphs,
    ::testing::Values(TdmaCase{1, 20, 10.0}, TdmaCase{2, 40, 12.0},
                      TdmaCase{3, 60, 15.0}, TdmaCase{4, 40, 25.0},
                      TdmaCase{5, 80, 8.0}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "_n" +
             std::to_string(info.param.nodes);
    });
