// Seed derivation: (root_seed, task_index) -> independent, reproducible
// substreams, the property the whole deterministic-parallelism contract
// rests on.
#include "ambisim/exec/seed.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "ambisim/sim/random.hpp"

namespace {

using ambisim::exec::derive_seed;
using ambisim::exec::splitmix64;
using ambisim::sim::Rng;

TEST(SeedTest, SplitMixIsAPureFunction) {
  EXPECT_EQ(splitmix64(0), splitmix64(0));
  EXPECT_EQ(derive_seed(42, 7), derive_seed(42, 7));
  static_assert(derive_seed(1, 2) == derive_seed(1, 2),
                "derive_seed must be constexpr-pure");
}

TEST(SeedTest, SplitMixAvalanchesAdjacentInputs) {
  // Adjacent states must map to outputs differing in many bits.
  for (std::uint64_t x : {std::uint64_t{0}, std::uint64_t{1},
                          std::uint64_t{1} << 63, std::uint64_t{12345}}) {
    const std::uint64_t diff = splitmix64(x) ^ splitmix64(x + 1);
    int bits = 0;
    for (std::uint64_t d = diff; d != 0; d >>= 1) bits += d & 1;
    EXPECT_GE(bits, 16) << "weak avalanche at x=" << x;
  }
}

TEST(SeedTest, DerivedSeedsAreUniqueAcrossIndicesAndRoots) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t root : {0ULL, 1ULL, 42ULL, 0xDEADBEEFULL})
    for (std::uint64_t i = 0; i < 1000; ++i)
      seen.insert(derive_seed(root, i));
  EXPECT_EQ(seen.size(), 4u * 1000u);
}

TEST(SeedTest, SubstreamsAreReproducible) {
  // The same (root, index) must yield the same Rng sequence every time.
  for (std::uint64_t index : {0ULL, 1ULL, 999ULL}) {
    Rng a(derive_seed(123, index));
    Rng b(derive_seed(123, index));
    for (int k = 0; k < 100; ++k)
      ASSERT_EQ(a.uniform(), b.uniform()) << "index " << index;
  }
}

TEST(SeedTest, AdjacentSubstreamsDiverge) {
  Rng a(derive_seed(123, 0));
  Rng b(derive_seed(123, 1));
  int equal = 0;
  for (int k = 0; k < 64; ++k)
    if (a.uniform() == b.uniform()) ++equal;
  EXPECT_LE(equal, 1);  // a collision is astronomically unlikely
}

TEST(SeedTest, SubstreamsAreStatisticallyIndependent) {
  // Pearson correlation between adjacent substreams' uniforms ~ 0, and each
  // stream's mean ~ 0.5: weak but cheap independence evidence.
  constexpr int kN = 20000;
  Rng a(derive_seed(7, 10));
  Rng b(derive_seed(7, 11));
  double sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
  for (int k = 0; k < kN; ++k) {
    const double x = a.uniform();
    const double y = b.uniform();
    sa += x;
    sb += y;
    saa += x * x;
    sbb += y * y;
    sab += x * y;
  }
  const double n = kN;
  const double cov = sab / n - (sa / n) * (sb / n);
  const double va = saa / n - (sa / n) * (sa / n);
  const double vb = sbb / n - (sb / n) * (sb / n);
  const double corr = cov / std::sqrt(va * vb);
  EXPECT_NEAR(corr, 0.0, 0.05);
  EXPECT_NEAR(sa / n, 0.5, 0.02);
  EXPECT_NEAR(sb / n, 0.5, 0.02);
}

TEST(SeedTest, RootSeedSelectsDisjointFamilies) {
  // Same index, different roots -> different substreams.
  Rng a(derive_seed(1, 5));
  Rng b(derive_seed(2, 5));
  int equal = 0;
  for (int k = 0; k < 64; ++k)
    if (a.uniform() == b.uniform()) ++equal;
  EXPECT_LE(equal, 1);
}

}  // namespace
