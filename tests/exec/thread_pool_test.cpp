// ThreadPool / TaskSet / parallel_for edge cases: zero tasks, more tasks
// than threads, exception propagation, worker identity.
#include "ambisim/exec/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

namespace {

using ambisim::exec::parallel_for;
using ambisim::exec::TaskSet;
using ambisim::exec::ThreadPool;

TEST(ThreadPoolTest, DefaultSizeIsAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
  EXPECT_EQ(pool.size(), ThreadPool::hardware_threads());
}

TEST(ThreadPoolTest, ZeroTasksJoinsImmediately) {
  ThreadPool pool(2);
  TaskSet tasks(pool);
  EXPECT_EQ(tasks.pending(), 0u);
  tasks.wait();  // nothing submitted: must not block or throw
}

TEST(ThreadPoolTest, ParallelForZeroIterationsIsANoOp) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  parallel_for(pool, 0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, ManyMoreTasksThanThreadsAllRunExactlyOnce) {
  ThreadPool pool(2);
  constexpr std::size_t kTasks = 997;  // deliberately not a multiple of 2
  std::vector<int> hits(kTasks, 0);
  TaskSet tasks(pool);
  for (std::size_t i = 0; i < kTasks; ++i)
    tasks.submit([&hits, i] { hits[i] += 1; });
  tasks.wait();
  for (std::size_t i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i], 1) << i;
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 1000;
  std::vector<std::size_t> out(kN, 0);
  parallel_for(pool, kN, [&](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPoolTest, SingleThreadPoolStillRunsEverything) {
  ThreadPool pool(1);
  std::vector<int> order;
  TaskSet tasks(pool);
  for (int i = 0; i < 10; ++i)
    tasks.submit([&order, i] { order.push_back(i); });
  tasks.wait();
  // One worker drains the FIFO queue in submission order.
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, WaitRethrowsFirstTaskException) {
  ThreadPool pool(2);
  TaskSet tasks(pool);
  tasks.submit([] { throw std::runtime_error("task blew up"); });
  EXPECT_THROW(tasks.wait(), std::runtime_error);
}

TEST(ThreadPoolTest, RemainingTasksStillRunWhenOneThrows) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  TaskSet tasks(pool);
  for (int i = 0; i < 50; ++i)
    tasks.submit([&completed, i] {
      if (i == 7) throw std::logic_error("midway failure");
      completed.fetch_add(1);
    });
  EXPECT_THROW(tasks.wait(), std::logic_error);
  EXPECT_EQ(completed.load(), 49);
}

TEST(ThreadPoolTest, PoolIsUsableAfterAnException) {
  ThreadPool pool(2);
  {
    TaskSet tasks(pool);
    tasks.submit([] { throw std::runtime_error("first batch fails"); });
    EXPECT_THROW(tasks.wait(), std::runtime_error);
  }
  std::atomic<int> ran{0};
  parallel_for(pool, 64, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 100,
                            [](std::size_t i) {
                              if (i == 41) throw std::out_of_range("boom");
                            }),
               std::out_of_range);
}

TEST(ThreadPoolTest, TaskSetDestructorJoinsWithoutThrowing) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  {
    TaskSet tasks(pool);
    for (int i = 0; i < 20; ++i)
      tasks.submit([&ran] {
        ran.fetch_add(1);
        throw std::runtime_error("swallowed by the destructor");
      });
    // No wait(): the destructor must join and drop the exceptions.
  }
  EXPECT_EQ(ran.load(), 20);
}

// --- per-worker task accounting (obs::Profiler's data source) -------------

TEST(ThreadPoolAccounting, DisabledByDefaultAndStatsStayZero) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.accounting_enabled());
  parallel_for(pool, 64, [](std::size_t) {});
  const auto stats = pool.worker_stats();
  ASSERT_EQ(stats.size(), 2u);
  for (const auto& s : stats) {
    EXPECT_EQ(s.tasks, 0u);
    EXPECT_EQ(s.queue_wait_s, 0.0);
    EXPECT_EQ(s.run_s, 0.0);
    EXPECT_EQ(s.idle_s, 0.0);
  }
}

TEST(ThreadPoolAccounting, TaskCountsSumToSubmitted) {
  ThreadPool pool(4);
  pool.set_accounting(true);
  constexpr std::size_t kTasks = 331;  // not a multiple of the pool size
  parallel_for(pool, kTasks, [](std::size_t) {}, /*grain=*/1);
  const auto stats = pool.worker_stats();
  ASSERT_EQ(stats.size(), 4u);
  std::uint64_t total = 0;
  for (const auto& s : stats) total += s.tasks;
  EXPECT_EQ(total, kTasks);
}

TEST(ThreadPoolAccounting, BucketsPartitionTheLifetime) {
  ThreadPool pool(3);
  pool.set_accounting(true);
  std::atomic<int> spins{0};
  parallel_for(
      pool, 96,
      [&](std::size_t) {
        // A little real work so run_s is not pure noise.
        for (volatile int i = 0; i < 2000; ++i) spins.fetch_add(0);
      },
      /*grain=*/1);
  // The pool is quiescent after parallel_for returns, so the three
  // buckets (queue wait + run + idle, plus the snapshot's open tail)
  // must partition each worker's lifetime.
  for (const auto& s : pool.worker_stats()) {
    EXPECT_GT(s.lifetime_s, 0.0);
    const double parts = s.queue_wait_s + s.run_s + s.idle_s;
    EXPECT_NEAR(parts, s.lifetime_s, 0.02 * s.lifetime_s + 1e-4);
    EXPECT_GE(s.queue_wait_s, 0.0);
    EXPECT_GE(s.run_s, 0.0);
    EXPECT_GE(s.idle_s, 0.0);
  }
}

TEST(ThreadPoolAccounting, ReenablingResetsTheCounters) {
  ThreadPool pool(2);
  pool.set_accounting(true);
  parallel_for(pool, 32, [](std::size_t) {}, /*grain=*/1);
  std::uint64_t first = 0;
  for (const auto& s : pool.worker_stats()) first += s.tasks;
  EXPECT_EQ(first, 32u);

  pool.set_accounting(true);  // re-arm: a fresh measurement epoch
  parallel_for(pool, 8, [](std::size_t) {}, /*grain=*/1);
  std::uint64_t second = 0;
  for (const auto& s : pool.worker_stats()) second += s.tasks;
  EXPECT_EQ(second, 8u);

  pool.set_accounting(false);
  EXPECT_FALSE(pool.accounting_enabled());
  parallel_for(pool, 16, [](std::size_t) {}, /*grain=*/1);
  std::uint64_t after_off = 0;
  for (const auto& s : pool.worker_stats()) after_off += s.tasks;
  EXPECT_EQ(after_off, 8u);  // disabled: counters freeze, new work unseen
}

TEST(ThreadPoolTest, WorkerIndexIsStableAndInRange) {
  ThreadPool pool(4);
  EXPECT_EQ(ThreadPool::current_worker_index(), -1);  // not a pool thread
  std::mutex mu;
  std::set<int> seen;
  parallel_for(
      pool, 256,
      [&](std::size_t) {
        const int w = ThreadPool::current_worker_index();
        ASSERT_GE(w, 0);
        ASSERT_LT(w, 4);
        std::lock_guard<std::mutex> lk(mu);
        seen.insert(w);
      },
      /*grain=*/1);
  EXPECT_FALSE(seen.empty());
}

}  // namespace
