// The exec determinism contract (tier-1 acceptance): a parallel sweep or
// replication batch produces bit-identical results to the serial path for
// the same root seed, at pool sizes 1, 2, and 8, and the obs shards merge
// without losing a single count.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ambisim/dse/sweep.hpp"
#include "ambisim/exec/runner.hpp"
#include "ambisim/exec/seed.hpp"
#include "ambisim/net/network_sim.hpp"
#include "ambisim/obs/obs.hpp"
#include "ambisim/sim/random.hpp"

namespace {

using namespace ambisim;

// A stochastic per-point workload: every design point runs its own
// Monte-Carlo chain from a seed derived from (root, index).  Intentionally
// mixes several distributions, including the single-pass weighted_index.
double stochastic_eval(double param, std::size_t index) {
  sim::Rng rng(exec::derive_seed(1234, index));
  const std::vector<double> weights{1.0, param, 2.0 * param + 0.5};
  double acc = 0.0;
  for (int k = 0; k < 500; ++k) {
    acc += rng.uniform(0.0, param + 1.0);
    acc += 0.01 * static_cast<double>(rng.weighted_index(weights));
    if (rng.bernoulli(0.3)) acc += rng.normal(0.0, 0.1);
  }
  return acc;
}

std::vector<double> serial_reference(const std::vector<double>& points) {
  std::vector<double> out(points.size());
  for (std::size_t i = 0; i < points.size(); ++i)
    out[i] = stochastic_eval(points[i], i);
  return out;
}

TEST(DeterminismTest, ParallelSweepBitIdenticalAcrossPoolSizes) {
  const std::vector<double> points = dse::linspace(0.1, 3.0, 64);
  const std::vector<double> expected = serial_reference(points);
  for (unsigned threads : {1u, 2u, 8u}) {
    const auto got = dse::parallel_sweep(
        points,
        [](double p, std::size_t i) { return stochastic_eval(p, i); },
        {.threads = threads});
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i)
      ASSERT_EQ(got[i], expected[i])  // bitwise: EXPECT_EQ, not NEAR
          << "slot " << i << " at pool size " << threads;
  }
}

TEST(DeterminismTest, ReplicationRunnerBitIdenticalAcrossPoolSizes) {
  constexpr std::size_t kReps = 32;
  constexpr std::uint64_t kRoot = 42;
  auto experiment = [](sim::Rng& rng, std::size_t) {
    double sum = 0.0;
    for (int k = 0; k < 1000; ++k) sum += rng.exponential(2.0);
    return sum;
  };
  // Serial reference built by hand from the documented seed derivation.
  std::vector<double> expected(kReps);
  for (std::size_t i = 0; i < kReps; ++i) {
    sim::Rng rng(exec::derive_seed(kRoot, i));
    expected[i] = experiment(rng, i);
  }
  for (unsigned threads : {1u, 2u, 8u}) {
    exec::ReplicationRunner runner({.threads = threads});
    const auto got = runner.run(kReps, kRoot, experiment);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < kReps; ++i)
      ASSERT_EQ(got[i], expected[i])
          << "replication " << i << " at pool size " << threads;
  }
}

TEST(DeterminismTest, RealNetworkSweepMatchesSerialExactly) {
  // A real simulator workload, kept small: 4 sensor networks, serial loop
  // vs 3-worker runner, every reported field compared bitwise.
  std::vector<net::SensorNetworkConfig> cfgs(4);
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    cfgs[i].node_count = 12;
    cfgs[i].field_side = units::Length(30.0);
    cfgs[i].radio_range = units::Length(14.0);
    cfgs[i].max_sim_time = units::Time(3600.0 * 6);
    cfgs[i].seed = static_cast<unsigned>(exec::derive_seed(9, i));
  }
  std::vector<net::SensorNetworkResult> expected;
  expected.reserve(cfgs.size());
  for (const auto& c : cfgs)
    expected.push_back(net::simulate_sensor_network(c));

  const auto got = dse::parallel_sweep(
      cfgs,
      [](const net::SensorNetworkConfig& c) {
        return net::simulate_sensor_network(c);
      },
      {.threads = 3});
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].first_node_death.value(),
              expected[i].first_node_death.value());
    EXPECT_EQ(got[i].half_network_death.value(),
              expected[i].half_network_death.value());
    EXPECT_EQ(got[i].packets_generated, expected[i].packets_generated);
    EXPECT_EQ(got[i].packets_delivered, expected[i].packets_delivered);
    EXPECT_EQ(got[i].delivery_ratio, expected[i].delivery_ratio);
    EXPECT_EQ(got[i].mean_hops, expected[i].mean_hops);
    EXPECT_EQ(got[i].hotspot_factor, expected[i].hotspot_factor);
  }
}

#if AMBISIM_OBS_COMPILED
TEST(DeterminismTest, ObsShardsMergeWithoutLosingCounts) {
  // Each task bumps a counter through the thread-bound context; after the
  // join the global registry must hold every increment exactly once.
  obs::context().metrics.clear();
  obs::set_enabled(true);
  constexpr std::size_t kPoints = 200;
  const std::vector<double> points(kPoints, 1.0);
  (void)dse::parallel_sweep(
      points,
      [](double p, std::size_t) {
        obs::context().metrics.counter("exec.test_items").inc();
        obs::context().metrics.histogram("exec.test_hist").observe(p);
        return p;
      },
      {.threads = 4});
  obs::set_enabled(false);
  const obs::Counter* c =
      obs::context().metrics.find_counter("exec.test_items");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value(), kPoints);
  const obs::Histogram* h =
      obs::context().metrics.find_histogram("exec.test_hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), kPoints);
  EXPECT_DOUBLE_EQ(h->moments().mean(), 1.0);
  obs::context().metrics.clear();
}
#endif  // AMBISIM_OBS_COMPILED

}  // namespace
