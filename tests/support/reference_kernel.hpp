// The pre-pool event kernel, preserved verbatim as a differential-testing
// oracle and benchmark baseline.
//
// This is the allocating implementation the slab/SBO kernel in
// `ambisim/sim/simulator.hpp` replaced: one `std::make_shared<bool>`
// cancellation flag per event, a type-erased `std::function` callable, and
// a `std::priority_queue` whose `top()` must be *copied* before popping.
// The randomized equivalence stress test replays identical workloads on
// both kernels and demands identical firing orders; `bench_kernel` times
// both to report the speedup honestly on the same machine.
//
// Two details reproduce the *build shape* of the original, not just its
// source: the observability probe gates are kept (the old kernel checked
// `obs::enabled()` per event and did string-keyed registry lookups when
// armed), and the methods that used to live out-of-line in
// `src/sim/simulator.cpp` are marked noinline so the compiler cannot fuse
// them into the benchmark loop — an optimization the shipped pre-pool
// kernel never got.  Do not "improve" this file — its value is being
// exactly the old semantics at exactly the old cost.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <stdexcept>
#include <vector>

#include "ambisim/obs/probe.hpp"
#include "ambisim/sim/units.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define AMBISIM_REF_OUTOFLINE __attribute__((noinline))
#else
#define AMBISIM_REF_OUTOFLINE
#endif

namespace ambisim::sim::reference {

using units::Time;

class ReferenceSimulator;

class ReferenceHandle {
 public:
  ReferenceHandle() = default;
  AMBISIM_REF_OUTOFLINE void cancel() {
    if (cancelled_ && !*cancelled_) {
      *cancelled_ = true;
      AMBISIM_OBS_COUNT("sim.cancelled");
    }
  }
  [[nodiscard]] AMBISIM_REF_OUTOFLINE bool pending() const {
    return cancelled_ && !*cancelled_;
  }

 private:
  friend class ReferenceSimulator;
  explicit ReferenceHandle(std::shared_ptr<bool> cancelled)
      : cancelled_(std::move(cancelled)) {}
  std::shared_ptr<bool> cancelled_;
};

class ReferenceSimulator {
 public:
  using Callback = std::function<void()>;

  ReferenceSimulator() = default;
  ReferenceSimulator(const ReferenceSimulator&) = delete;
  ReferenceSimulator& operator=(const ReferenceSimulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  AMBISIM_REF_OUTOFLINE ReferenceHandle schedule_at(Time t, Callback fn) {
    if (t < now_)
      throw std::invalid_argument("schedule_at: time is in the past");
    if (!fn) throw std::invalid_argument("schedule_at: empty callback");
#if AMBISIM_OBS_COMPILED
    if (obs::enabled()) [[unlikely]] {
      obs::context().metrics.counter("sim.scheduled").inc();
      obs::context().tracer.instant("schedule", "kernel",
                                    obs::to_us(t.value()));
    }
#endif
    auto flag = std::make_shared<bool>(false);
    queue_.push(Event{t, seq_++, std::move(fn), flag});
    return ReferenceHandle(flag);
  }

  AMBISIM_REF_OUTOFLINE ReferenceHandle schedule_in(Time dt, Callback fn) {
    if (dt < Time(0.0))
      throw std::invalid_argument("schedule_in: negative delay");
    return schedule_at(now_ + dt, std::move(fn));
  }

  AMBISIM_REF_OUTOFLINE bool step() {
    while (!queue_.empty()) {
      Event ev = queue_.top();
      queue_.pop();
      if (*ev.cancelled) continue;
      now_ = ev.time;
      *ev.cancelled = true;
      ++executed_;
#if AMBISIM_OBS_COMPILED
      if (obs::enabled()) [[unlikely]] {
        obs::context().metrics.counter("sim.fired").inc();
        obs::ProbeScope span("event", "kernel", obs::to_us(now_.value()), 0);
        obs::ScopedTimer timer("sim.callback_s");
        ev.fn();
        return true;
      }
#endif
      ev.fn();
      return true;
    }
    return false;
  }

  AMBISIM_REF_OUTOFLINE void run() {
    stopped_ = false;
    while (!stopped_ && step()) {
    }
  }

  AMBISIM_REF_OUTOFLINE void run_until(Time deadline) {
    if (deadline < now_)
      throw std::invalid_argument("run_until: deadline is in the past");
    stopped_ = false;
    for (;;) {
      while (!queue_.empty() && *queue_.top().cancelled) queue_.pop();
      if (stopped_ || queue_.empty() || queue_.top().time > deadline) break;
      step();
    }
    if (!stopped_) now_ = deadline;
  }

  void stop() { stopped_ = true; }
  [[nodiscard]] bool stopped() const { return stopped_; }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    Time time;
    std::uint64_t seq;
    Callback fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Time now_{0.0};
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace ambisim::sim::reference
