// Robustness: the assembler must never crash or accept garbage silently —
// every malformed input raises AssemblyError, every valid mutation of a
// valid program stays executable.
#include <gtest/gtest.h>

#include <string>

#include "ambisim/isa/assembler.hpp"
#include "ambisim/isa/machine.hpp"
#include "ambisim/sim/random.hpp"
#include "ambisim/tech/technology.hpp"

using namespace ambisim;
using namespace ambisim::isa;
using namespace ambisim::units::literals;

namespace {

std::string random_garbage(sim::Rng& rng, int length) {
  static const char kChars[] =
      "abcdefghijklmnopqrstuvwxyz0123456789 ,:()-#;\tr\n";
  std::string s;
  for (int i = 0; i < length; ++i) {
    s += kChars[rng.uniform_int(0, sizeof(kChars) - 2)];
  }
  return s;
}

}  // namespace

class AssemblerFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(AssemblerFuzz, GarbageNeverCrashesOnlyThrows) {
  sim::Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const std::string source = random_garbage(
        rng, static_cast<int>(rng.uniform_int(1, 160)));
    try {
      const auto program = assemble(source);
      // If it assembled, every instruction must be structurally sane.
      for (const auto& ins : program) {
        EXPECT_LT(ins.rd, kRegisterCount);
        EXPECT_LT(ins.rs1, kRegisterCount);
        EXPECT_LT(ins.rs2, kRegisterCount);
      }
    } catch (const AssemblyError&) {
      // expected for malformed input
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssemblerFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u));

class MachineFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(MachineFuzz, RandomValidProgramsExecuteBounded) {
  // Generate random but structurally valid straight-line programs; the
  // machine must execute them without UB (memory ops constrained to a safe
  // window) and terminate at the instruction bound or HALT.
  sim::Rng rng(GetParam());
  const auto& node = tech::TechnologyLibrary::standard().node("130nm");
  for (int trial = 0; trial < 50; ++trial) {
    std::string src = "addi r1, r0, 64\n";  // safe base address
    const int len = static_cast<int>(rng.uniform_int(1, 40));
    for (int i = 0; i < len; ++i) {
      switch (rng.uniform_int(0, 5)) {
        case 0: src += "add r2, r3, r4\n"; break;
        case 1: src += "mul r5, r2, r2\n"; break;
        case 2: src += "addi r3, r3, 7\n"; break;
        case 3: src += "sw r3, 0(r1)\n"; break;
        case 4: src += "lw r4, 0(r1)\n"; break;
        default: src += "xor r6, r2, r3\n"; break;
      }
    }
    src += "halt\n";
    Machine m(node, node.vdd_min, 1_MHz);
    m.load_program(assemble(src));
    EXPECT_TRUE(m.run(10'000));
    EXPECT_EQ(m.stats().instructions, static_cast<std::uint64_t>(len) + 2);
    EXPECT_GT(m.stats().total_energy().value(), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MachineFuzz, ::testing::Values(11u, 12u));
