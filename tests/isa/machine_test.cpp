#include "ambisim/isa/machine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "ambisim/isa/assembler.hpp"

using namespace ambisim;
using namespace ambisim::isa;
namespace u = ambisim::units;
using namespace ambisim::units::literals;

namespace {

Machine make_machine() {
  const auto& n = tech::TechnologyLibrary::standard().node("130nm");
  return Machine(n, n.vdd_min, 10_MHz);
}

Machine run_program(const std::string& src,
                    std::vector<std::pair<int, std::int32_t>> init = {}) {
  Machine m = make_machine();
  m.load_program(assemble(src));
  for (auto [r, v] : init) m.set_reg(r, v);
  EXPECT_TRUE(m.run());
  return m;
}

}  // namespace

TEST(Machine, ArithmeticSemantics) {
  const auto m = run_program(R"(
      addi r1, r0, 7
      addi r2, r0, 3
      add  r3, r1, r2
      sub  r4, r1, r2
      mul  r5, r1, r2
      and  r6, r1, r2
      or   r7, r1, r2
      xor  r8, r1, r2
      slt  r9, r2, r1
      slt  r10, r1, r2
      halt)");
  EXPECT_EQ(m.reg(3), 10);
  EXPECT_EQ(m.reg(4), 4);
  EXPECT_EQ(m.reg(5), 21);
  EXPECT_EQ(m.reg(6), 3);
  EXPECT_EQ(m.reg(7), 7);
  EXPECT_EQ(m.reg(8), 4);
  EXPECT_EQ(m.reg(9), 1);
  EXPECT_EQ(m.reg(10), 0);
}

TEST(Machine, ShiftsAndLui) {
  const auto m = run_program(R"(
      addi r1, r0, 1
      slli r2, r1, 8
      addi r3, r0, 2
      shl  r4, r1, r3
      srli r5, r2, 4
      lui  r6, 0x1
      halt)");
  EXPECT_EQ(m.reg(2), 256);
  EXPECT_EQ(m.reg(4), 4);
  EXPECT_EQ(m.reg(5), 16);
  EXPECT_EQ(m.reg(6), 0x10000);
}

TEST(Machine, RegisterZeroIsHardwired) {
  const auto m = run_program("addi r0, r0, 99\nadd r1, r0, r0\nhalt");
  EXPECT_EQ(m.reg(0), 0);
  EXPECT_EQ(m.reg(1), 0);
}

TEST(Machine, MemoryWordAndByte) {
  const auto m = run_program(R"(
      addi r1, r0, 0x40
      addi r2, r0, -123456
      sw   r2, 0(r1)
      lw   r3, 0(r1)
      addi r4, r0, 0xAB
      sb   r4, 8(r1)
      lb   r5, 8(r1)
      halt)");
  EXPECT_EQ(m.reg(3), -123456);
  // 0xAB sign-extends to -85 as a byte.
  EXPECT_EQ(m.reg(5), static_cast<std::int8_t>(0xAB));
}

TEST(Machine, MemoryBoundsChecked) {
  Machine m = make_machine();
  m.load_program(assemble("lw r1, 0(r2)\nhalt"));
  m.set_reg(2, 1 << 20);  // out of the 64 KiB space
  EXPECT_THROW(m.run(), std::out_of_range);
  // Unaligned word access.
  Machine m2 = make_machine();
  m2.load_program(assemble("lw r1, 1(r0)\nhalt"));
  EXPECT_THROW(m2.run(), std::out_of_range);
}

TEST(Machine, BranchesAndJumps) {
  const auto m = run_program(R"(
        addi r1, r0, 5
        addi r2, r0, 0
loop:   add  r2, r2, r1
        addi r1, r1, -1
        bne  r1, r0, loop
        jal  r15, sub1
        jmp  end
sub1:   addi r3, r0, 77
        jr   r15
end:    halt)");
  EXPECT_EQ(m.reg(2), 15);  // 5+4+3+2+1
  EXPECT_EQ(m.reg(3), 77);  // subroutine ran and returned
}

TEST(Machine, FibonacciFirmware) {
  Machine m = make_machine();
  m.load_program(assemble(firmware::fibonacci()));
  m.set_reg(1, 10);
  ASSERT_TRUE(m.run());
  EXPECT_EQ(m.reg(2), 55);
}

TEST(Machine, SensingFilterFirmware) {
  Machine m = make_machine();
  m.load_program(assemble(firmware::sensing_filter()));
  std::vector<std::int32_t> samples{100, 100, 100, 100, 200, 200,
                                    200, 200, 0,   0,   0,   0};
  std::size_t next = 0;
  std::vector<std::int32_t> reported;
  m.set_input_port([&](int port) -> std::int32_t {
    EXPECT_EQ(port, 0);
    return next < samples.size() ? samples[next++] : 0;
  });
  m.set_output_port([&](int port, std::int32_t v) {
    EXPECT_EQ(port, 1);
    reported.push_back(v);
  });
  m.set_reg(1, static_cast<std::int32_t>(samples.size()));
  m.set_reg(2, 150);  // threshold
  ASSERT_TRUE(m.run());
  // The moving average crosses 150 while the 200-plateau fills the window.
  ASSERT_FALSE(reported.empty());
  for (auto v : reported) EXPECT_GE(v, 150);
  EXPECT_EQ(next, samples.size());  // every sample consumed
}

TEST(Machine, Fir16Firmware) {
  Machine m = make_machine();
  m.load_program(assemble(firmware::fir16()));
  // Unit impulse response: coefficients come back out one by one.
  for (int i = 0; i < 16; ++i)
    m.store_word(0x100 + 4 * i, i + 1);  // coefficients 1..16
  m.store_word(0x200, 1);  // impulse at the first sample
  m.set_reg(1, 4);         // four output samples
  ASSERT_TRUE(m.run());
  EXPECT_EQ(m.load_word(0x300), 1);
  // Output k convolves the window starting at sample k: impulse has moved
  // out of the window, so later outputs are 0.
  EXPECT_EQ(m.load_word(0x304), 0);
}

TEST(Machine, CycleAccountingByClass) {
  Machine m = make_machine();
  m.load_program(assemble("addi r1, r0, 1\nmul r2, r1, r1\nlw r3, 0(r0)\nhalt"));
  ASSERT_TRUE(m.run());
  const auto& s = m.stats();
  EXPECT_EQ(s.instructions, 4u);
  // 1 (alu) + 4 (mul) + 2 (mem) + 1 (halt) = 8 cycles.
  EXPECT_EQ(s.cycles, 8u);
  EXPECT_EQ(s.by_class[static_cast<int>(InstrClass::Alu)], 1u);
  EXPECT_EQ(s.by_class[static_cast<int>(InstrClass::Mul)], 1u);
  EXPECT_EQ(s.by_class[static_cast<int>(InstrClass::Mem)], 1u);
  EXPECT_EQ(s.by_class[static_cast<int>(InstrClass::System)], 1u);
  EXPECT_GT(s.cpi(), 1.0);
}

TEST(Machine, EnergyAccountingIsPositiveAndClassOrdered) {
  Machine alu = make_machine();
  alu.load_program(assemble("add r1, r1, r1\nhalt"));
  alu.run();
  Machine mul = make_machine();
  mul.load_program(assemble("mul r1, r1, r1\nhalt"));
  mul.run();
  // A multiply switches more gates than an add.
  EXPECT_GT(mul.stats().dynamic_energy.value(),
            alu.stats().dynamic_energy.value());
  EXPECT_GT(alu.stats().total_energy().value(), 0.0);
  EXPECT_GT(alu.stats().leakage_energy.value(), 0.0);
}

TEST(Machine, EnergyPerInstructionMatchesMcuScale) {
  // The instruction-accurate model should land near the abstract MCU
  // preset: single-digit pJ per instruction at 0.8 V / 130 nm.
  Machine m = make_machine();
  m.load_program(assemble(firmware::fibonacci()));
  m.set_reg(1, 30);
  ASSERT_TRUE(m.run());
  const double pj = m.energy_per_instruction().value() * 1e12;
  EXPECT_GT(pj, 1.0);
  EXPECT_LT(pj, 100.0);
}

TEST(Machine, RunawayProgramBoundedByMaxInstructions) {
  Machine m = make_machine();
  m.load_program(assemble("loop: jmp loop"));
  EXPECT_FALSE(m.run(1000));
  EXPECT_EQ(m.stats().instructions, 1000u);
  EXPECT_FALSE(m.halted());
}

TEST(Machine, ResetClearsState) {
  Machine m = make_machine();
  m.load_program(assemble("addi r1, r0, 5\nsw r1, 0(r0)\nhalt"));
  ASSERT_TRUE(m.run());
  m.reset();
  EXPECT_EQ(m.reg(1), 0);
  EXPECT_EQ(m.load_word(0), 0);
  EXPECT_EQ(m.stats().instructions, 0u);
  EXPECT_FALSE(m.halted());
  EXPECT_EQ(m.pc(), 0u);
}

TEST(Machine, PortWithoutHandlerThrows) {
  Machine m = make_machine();
  m.load_program(assemble("in r1, 0\nhalt"));
  EXPECT_THROW(m.run(), std::logic_error);
}

TEST(Machine, FallingOffTheProgramHalts) {
  Machine m = make_machine();
  m.load_program(assemble("nop"));
  EXPECT_TRUE(m.run());  // implicit halt at the end of the program
  EXPECT_TRUE(m.halted());
  EXPECT_EQ(m.stats().instructions, 1u);
}

TEST(Machine, ConstructionValidation) {
  const auto& n = tech::TechnologyLibrary::standard().node("130nm");
  EXPECT_THROW(Machine(n, n.vdd_min, u::Frequency(0.0)),
               std::invalid_argument);
  EXPECT_THROW(Machine(n, n.vdd_min, 100_GHz), std::domain_error);
  EXPECT_THROW(Machine(n, n.vdd_min, 1_MHz, 2), std::invalid_argument);
}

TEST(Machine, AveragePowerIsMicrowattScaleWhenSlow) {
  // At 1 MHz and 0.8 V the little core should sit near the uW regime the
  // keynote assigns to autonomous nodes.
  const auto& n = tech::TechnologyLibrary::standard().node("130nm");
  Machine m(n, n.vdd_min, 1_MHz);
  m.load_program(assemble(firmware::fibonacci()));
  m.set_reg(1, 40);
  ASSERT_TRUE(m.run());
  EXPECT_LT(m.average_power().value(), 1e-3);
  EXPECT_GT(m.average_power().value(), 1e-8);
}
