#include "ambisim/isa/assembler.hpp"

#include <gtest/gtest.h>

using namespace ambisim::isa;

TEST(Assembler, ParsesRegisterRegisterForms) {
  const auto p = assemble("add r1, r2, r3\nmul r4, r5, r6\n");
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0].op, Opcode::Add);
  EXPECT_EQ(p[0].rd, 1);
  EXPECT_EQ(p[0].rs1, 2);
  EXPECT_EQ(p[0].rs2, 3);
  EXPECT_EQ(p[1].op, Opcode::Mul);
}

TEST(Assembler, ParsesImmediatesDecimalAndHex) {
  const auto p = assemble("addi r1, r0, -42\nori r2, r0, 0xFF\nlui r3, 0x12");
  EXPECT_EQ(p[0].imm, -42);
  EXPECT_EQ(p[1].imm, 0xFF);
  EXPECT_EQ(p[2].op, Opcode::Lui);
  EXPECT_EQ(p[2].imm, 0x12);
}

TEST(Assembler, ParsesMemoryOperands) {
  const auto p = assemble("lw r1, 16(r2)\nsw r3, -4(r4)\nlb r5, (r6)");
  EXPECT_EQ(p[0].op, Opcode::Lw);
  EXPECT_EQ(p[0].rd, 1);
  EXPECT_EQ(p[0].rs1, 2);
  EXPECT_EQ(p[0].imm, 16);
  EXPECT_EQ(p[1].op, Opcode::Sw);
  EXPECT_EQ(p[1].rs2, 3);  // value register
  EXPECT_EQ(p[1].rs1, 4);  // base register
  EXPECT_EQ(p[1].imm, -4);
  EXPECT_EQ(p[2].imm, 0);  // empty offset defaults to zero
}

TEST(Assembler, ResolvesLabelsForwardAndBackward) {
  const auto p = assemble(R"(
start:  addi r1, r0, 3
loop:   addi r1, r1, -1
        bne  r1, r0, loop
        jmp  end
        nop
end:    halt
)");
  ASSERT_EQ(p.size(), 6u);
  EXPECT_EQ(p[2].op, Opcode::Bne);
  EXPECT_EQ(p[2].imm, 1);  // loop is instruction index 1
  EXPECT_EQ(p[3].op, Opcode::Jmp);
  EXPECT_EQ(p[3].imm, 5);  // end
}

TEST(Assembler, CommentsAndBlankLinesIgnored) {
  const auto p = assemble(
      "; a comment line\n"
      "   # another\n"
      "nop ; trailing comment\n"
      "\n"
      "halt # done\n");
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0].op, Opcode::Nop);
  EXPECT_EQ(p[1].op, Opcode::Halt);
}

TEST(Assembler, MultipleLabelsOnOneLine) {
  const auto p = assemble("a: b: halt");
  ASSERT_EQ(p.size(), 1u);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  try {
    assemble("nop\nbogus r1, r2\n");
    FAIL() << "expected AssemblyError";
  } catch (const AssemblyError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
  }
}

TEST(Assembler, RejectsMalformedInput) {
  EXPECT_THROW(assemble("add r1, r2"), AssemblyError);        // arity
  EXPECT_THROW(assemble("add r1, r2, r99"), AssemblyError);   // register
  EXPECT_THROW(assemble("addi r1, r0, zzz"), AssemblyError);  // immediate
  EXPECT_THROW(assemble("jmp nowhere"), AssemblyError);       // label
  EXPECT_THROW(assemble("lw r1, r2"), AssemblyError);         // mem operand
  EXPECT_THROW(assemble("x: nop\nx: halt"), AssemblyError);   // dup label
  EXPECT_THROW(assemble("halt r1"), AssemblyError);           // arity 0
}

TEST(Assembler, PortInstructions) {
  const auto p = assemble("in r1, 0\nout r2, 1");
  EXPECT_EQ(p[0].op, Opcode::In);
  EXPECT_EQ(p[0].rd, 1);
  EXPECT_EQ(p[0].imm, 0);
  EXPECT_EQ(p[1].op, Opcode::Out);
  EXPECT_EQ(p[1].rs1, 2);
  EXPECT_EQ(p[1].imm, 1);
}

TEST(Assembler, FirmwarePresetsAssemble) {
  EXPECT_GT(assemble(firmware::sensing_filter()).size(), 10u);
  EXPECT_GT(assemble(firmware::fibonacci()).size(), 5u);
  EXPECT_GT(assemble(firmware::fir16()).size(), 15u);
}

TEST(Assembler, CaseInsensitiveMnemonicsAndRegisters) {
  const auto p = assemble("ADD R1, r2, R3");
  EXPECT_EQ(p[0].op, Opcode::Add);
  EXPECT_EQ(p[0].rd, 1);
}

TEST(Isa, InstrClassPartition) {
  EXPECT_EQ(instr_class(Opcode::Add), InstrClass::Alu);
  EXPECT_EQ(instr_class(Opcode::Mul), InstrClass::Mul);
  EXPECT_EQ(instr_class(Opcode::Lw), InstrClass::Mem);
  EXPECT_EQ(instr_class(Opcode::Beq), InstrClass::Branch);
  EXPECT_EQ(instr_class(Opcode::In), InstrClass::Io);
  EXPECT_EQ(instr_class(Opcode::Halt), InstrClass::System);
  EXPECT_EQ(mnemonic(Opcode::Addi), "addi");
}
