#include "ambisim/fault/schedule.hpp"

#include <gtest/gtest.h>

#include <algorithm>

using namespace ambisim;
using fault::FaultEvent;
using fault::FaultKind;
using fault::FaultSchedule;
using fault::FaultScheduleConfig;

namespace {

FaultScheduleConfig busy_config() {
  FaultScheduleConfig cfg;
  cfg.seed = 77;
  cfg.horizon_s = 7200.0;
  cfg.node_count = 25;
  cfg.crash_mttf_s = 600.0;
  cfg.crash_mttr_s = 90.0;
  cfg.reboot_s = 5.0;
  cfg.link_mtbf_s = 800.0;
  cfg.link_mttr_s = 40.0;
  cfg.corruption_rate = 0.01;
  cfg.clock_drift_ppm = 50.0;
  return cfg;
}

}  // namespace

TEST(FaultSchedule, GenerationIsPure) {
  const auto cfg = busy_config();
  const auto a = FaultSchedule::generate(cfg);
  const auto b = FaultSchedule::generate(cfg);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.events().size(), b.events().size());
  EXPECT_EQ(a.checksum(), b.checksum());
}

TEST(FaultSchedule, SeedsProduceDistinctStreams) {
  auto cfg = busy_config();
  const auto a = FaultSchedule::generate(cfg);
  cfg.seed = 78;
  const auto b = FaultSchedule::generate(cfg);
  EXPECT_NE(a.checksum(), b.checksum());
}

TEST(FaultSchedule, EventsSortedAndStartInsideHorizon) {
  const auto sched = FaultSchedule::generate(busy_config());
  const auto& ev = sched.events();
  ASSERT_FALSE(ev.empty());
  EXPECT_TRUE(std::is_sorted(
      ev.begin(), ev.end(),
      [](const FaultEvent& a, const FaultEvent& b) {
        return a.time_s < b.time_s;
      }));
  // Every outage *begins* inside the horizon; its recovery tail may spill
  // past it (the simulator just never reaches those events).
  for (const FaultEvent& e : ev) {
    if (e.kind == FaultKind::NodeCrash || e.kind == FaultKind::LinkDown)
      EXPECT_LT(e.time_s, sched.config().horizon_s);
    EXPECT_GE(e.time_s, 0.0);
  }
}

TEST(FaultSchedule, CrashOutagesCarryFullLifecycle) {
  const auto sched = FaultSchedule::generate(busy_config());
  long long crashes = 0, reboots = 0, recovers = 0;
  for (const FaultEvent& e : sched.events()) {
    crashes += e.kind == FaultKind::NodeCrash;
    reboots += e.kind == FaultKind::NodeReboot;
    recovers += e.kind == FaultKind::NodeRecover;
    if (e.kind == FaultKind::NodeCrash)
      EXPECT_GE(e.magnitude, sched.config().reboot_s);
  }
  EXPECT_GT(crashes, 0);
  EXPECT_EQ(crashes, reboots);
  EXPECT_EQ(crashes, recovers);
}

TEST(FaultSchedule, SinkImmunityRespected) {
  const auto sched = FaultSchedule::generate(busy_config());
  for (const FaultEvent& e : sched.events()) EXPECT_NE(e.node, 0);

  auto cfg = busy_config();
  cfg.sink_immune = false;
  const auto mortal = FaultSchedule::generate(cfg);
  EXPECT_TRUE(std::any_of(
      mortal.events().begin(), mortal.events().end(),
      [](const FaultEvent& e) { return e.node == 0; }));
}

TEST(FaultSchedule, ClockDriftBoundedAndAtTimeZero) {
  const auto cfg = busy_config();
  const auto sched = FaultSchedule::generate(cfg);
  int drifts = 0;
  for (const FaultEvent& e : sched.events()) {
    if (e.kind != FaultKind::ClockDrift) continue;
    ++drifts;
    EXPECT_DOUBLE_EQ(e.time_s, 0.0);
    EXPECT_LE(std::abs(e.magnitude), cfg.clock_drift_ppm);
  }
  EXPECT_EQ(drifts, cfg.node_count - 1);  // every node but the sink
}

TEST(FaultSchedule, DisabledProcessesYieldEmptySchedule) {
  FaultScheduleConfig cfg;
  cfg.node_count = 10;
  cfg.horizon_s = 3600.0;
  // All rates at their zero defaults.
  const auto sched = FaultSchedule::generate(cfg);
  EXPECT_TRUE(sched.empty());
  EXPECT_EQ(sched.checksum(), FaultSchedule().checksum());
}

TEST(FaultSchedule, ValidationRejectsBadConfigs) {
  FaultScheduleConfig cfg;
  cfg.node_count = -1;
  EXPECT_THROW(FaultSchedule::generate(cfg), std::invalid_argument);
  cfg = {};
  cfg.horizon_s = -1.0;
  EXPECT_THROW(FaultSchedule::generate(cfg), std::invalid_argument);
  cfg = {};
  cfg.crash_mttf_s = -5.0;
  EXPECT_THROW(FaultSchedule::generate(cfg), std::invalid_argument);
  cfg = {};
  cfg.corruption_rate = 1.5;
  EXPECT_THROW(FaultSchedule::generate(cfg), std::invalid_argument);
}
