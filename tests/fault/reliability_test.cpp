#include "ambisim/fault/reliability.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "ambisim/net/packet_sim.hpp"

using namespace ambisim;
namespace u = ambisim::units;

TEST(Digest, OrderSensitiveAndStable) {
  fault::Digest a, b, c;
  a.fold(1.0);
  a.fold(2.0);
  b.fold(1.0);
  b.fold(2.0);
  c.fold(2.0);
  c.fold(1.0);
  EXPECT_EQ(a.value(), b.value());
  EXPECT_NE(a.value(), c.value());
  // +0.0 and -0.0 differ bitwise, so the digest must tell them apart.
  fault::Digest pz, nz;
  pz.fold(0.0);
  nz.fold(-0.0);
  EXPECT_NE(pz.value(), nz.value());
}

TEST(AvailabilityStudy, AggregatesEveryReplication) {
  const auto res = fault::run_availability_study(
      6, 123, [](sim::Rng& rng, std::size_t i) {
        fault::ReliabilitySample s;
        s.delivered_fraction = 0.5 + 0.05 * static_cast<double>(i);
        s.availability = rng.uniform(0.8, 1.0);
        s.generated = 100;
        s.delivered = static_cast<long long>(100 * s.delivered_fraction);
        return s;
      });
  ASSERT_EQ(res.replications.size(), 6u);
  EXPECT_EQ(res.delivered_fraction.count(), 6u);
  EXPECT_NEAR(res.delivered_fraction.mean(), 0.625, 1e-12);
  EXPECT_DOUBLE_EQ(res.delivered_fraction.min(), 0.5);
  EXPECT_DOUBLE_EQ(res.delivered_fraction.max(), 0.75);
  EXPECT_NE(res.checksum, 0u);
  // Replication i always sees substream derive_seed(root, i): re-running
  // reproduces the exact availability draws, hence the checksum.
  const auto again = fault::run_availability_study(
      6, 123, [](sim::Rng& rng, std::size_t i) {
        fault::ReliabilitySample s;
        s.delivered_fraction = 0.5 + 0.05 * static_cast<double>(i);
        s.availability = rng.uniform(0.8, 1.0);
        s.generated = 100;
        s.delivered = static_cast<long long>(100 * s.delivered_fraction);
        return s;
      });
  EXPECT_EQ(res.checksum, again.checksum);
}

namespace {

net::PacketSimResult run_with_crash_mttf(double mttf_s) {
  net::PacketSimConfig cfg;
  cfg.node_count = 30;
  cfg.field_side = u::Length(40.0);
  cfg.radio_range = u::Length(15.0);
  cfg.duration = u::Time(1800.0);
  cfg.seed = 21;
  net::PacketFaultConfig f;
  f.schedule.seed = 300;
  f.schedule.crash_mttf_s = mttf_s;
  f.schedule.crash_mttr_s = 90.0;
  cfg.faults = f;
  return net::simulate_packets(cfg);
}

}  // namespace

TEST(FaultyPacketSim, AccountingIdentityHolds) {
  const auto r = run_with_crash_mttf(600.0);
  EXPECT_GT(r.generated, 0);
  EXPECT_GT(r.delivered, 0);
  EXPECT_GT(r.missed_reports, 0);
  // Every offered report is delivered, lost for a known reason,
  // unroutable from birth, or still in flight at the horizon.
  EXPECT_LE(r.delivered + r.lost() + r.undeliverable, r.generated);
  EXPECT_GE(r.delivered + r.lost() + r.undeliverable,
            r.generated - 2 * static_cast<long long>(r.mean_hops + 8));
  EXPECT_GT(r.reroutes, 0);
  EXPECT_LT(r.availability, 1.0);
  EXPECT_GT(r.availability, 0.0);
  EXPECT_GT(r.mttf_s, 0.0);
  EXPECT_GT(r.mttr_s, 0.0);
  EXPECT_GE(r.delivered_fraction(), r.goodput_fraction());
}

TEST(FaultyPacketSim, DeliveredFractionDegradesWithCrashRate) {
  const auto gentle = run_with_crash_mttf(4000.0);
  const auto harsh = run_with_crash_mttf(400.0);
  EXPECT_LT(harsh.availability, gentle.availability);
  EXPECT_LT(harsh.delivered_fraction(), gentle.delivered_fraction());
}

TEST(FaultyPacketSim, CorruptionCausesRetriesNotSilentLoss) {
  net::PacketSimConfig cfg;
  cfg.node_count = 25;
  cfg.duration = u::Time(900.0);
  cfg.seed = 8;
  net::PacketFaultConfig f;
  f.schedule.seed = 17;
  f.schedule.corruption_rate = 0.15;
  f.retry.max_attempts = 5;
  cfg.faults = f;
  const auto r = net::simulate_packets(cfg);
  EXPECT_GT(r.corrupted_attempts, 0);
  EXPECT_GT(r.retries, 0);
  // With retries enabled and no crashes, corruption alone should cost
  // little delivery: most corrupted attempts succeed on a later try.
  EXPECT_GT(r.delivered_fraction(), 0.97);
  EXPECT_EQ(r.missed_reports, 0);
  EXPECT_EQ(r.reroutes, 0);
}

TEST(FaultyPacketSim, DeadlineSplitsDeliveredFromGoodput) {
  net::PacketSimConfig cfg;
  cfg.node_count = 30;
  cfg.duration = u::Time(900.0);
  cfg.seed = 13;
  net::PacketFaultConfig f;
  f.schedule.seed = 23;
  f.schedule.corruption_rate = 0.30;
  f.retry.max_attempts = 8;
  f.retry.timeout_s = 2.0;
  f.retry.max_backoff_s = 30.0;
  f.deadline = u::Time(5.0);  // tight: backoff stalls blow through it
  cfg.faults = f;
  const auto r = net::simulate_packets(cfg);
  EXPECT_GT(r.delayed, 0);
  EXPECT_LE(r.delayed, r.delivered);
  EXPECT_NEAR(r.goodput_fraction(),
              r.delivered_fraction() -
                  static_cast<double>(r.delayed) /
                      static_cast<double>(r.generated),
              1e-12);
}
