// Bit-identity guarantees of the fault subsystem:
//   1. With faults disengaged, simulate_packets produces output
//      bit-identical to the pre-fault simulator (golden checksums captured
//      before the subsystem existed).
//   2. With faults armed, a run is a pure function of its config.
//   3. A Monte-Carlo availability study is bit-identical across worker-pool
//      sizes {1, 2, 8}.
#include <gtest/gtest.h>

#include <cstdint>

#include "ambisim/fault/reliability.hpp"
#include "ambisim/net/packet_sim.hpp"

using namespace ambisim;
namespace u = ambisim::units;

namespace {

std::uint64_t packet_sim_checksum(const net::PacketSimConfig& cfg) {
  const auto r = net::simulate_packets(cfg);
  fault::Digest d;
  d.fold(r.generated);
  d.fold(r.delivered);
  d.fold(r.undeliverable);
  d.fold(r.mean_hops);
  d.fold(r.mean_link_attempts);
  d.fold(r.energy_per_delivered.value());
  for (double v : r.end_to_end_latency.values()) d.fold(v);
  for (double v : r.queueing_delay.values()) d.fold(v);
  for (const auto& [name, e] : r.ledger.breakdown()) {
    for (char c : name) d.fold(static_cast<std::uint64_t>(c));
    d.fold(e.value());
  }
  return d.value();
}

net::PacketFaultConfig stress_faults() {
  net::PacketFaultConfig f;
  f.schedule.seed = 42;
  f.schedule.crash_mttf_s = 900.0;
  f.schedule.crash_mttr_s = 120.0;
  f.schedule.link_mtbf_s = 1500.0;
  f.schedule.link_mttr_s = 60.0;
  f.schedule.corruption_rate = 0.02;
  f.schedule.clock_drift_ppm = 40.0;
  f.energy = fault::EnergyCouplingConfig{};
  f.energy->harvest_avg_watt = 50e-6;
  f.energy->baseline_watt = 40e-6;
  f.energy->initial_soc = 0.04;
  return f;
}

fault::ReliabilitySample faulty_replication(sim::Rng&, std::size_t index) {
  net::PacketSimConfig cfg;
  cfg.node_count = 25;
  cfg.field_side = u::Length(38.0);
  cfg.radio_range = u::Length(15.0);
  cfg.duration = u::Time(900.0);
  cfg.seed = static_cast<unsigned>(1000 + index);
  cfg.faults = stress_faults();
  cfg.faults->schedule.seed = 5000 + index;
  const auto r = net::simulate_packets(cfg);
  fault::ReliabilitySample s;
  s.delivered_fraction = r.delivered_fraction();
  s.goodput_fraction = r.goodput_fraction();
  s.availability = r.availability;
  s.mttf_s = r.mttf_s;
  s.mttr_s = r.mttr_s;
  s.generated = r.generated;
  s.delivered = r.delivered;
  s.lost = r.lost();
  s.delayed = r.delayed;
  s.retries = r.retries;
  return s;
}

}  // namespace

// Golden constants captured from the pre-fault-subsystem build.  A change
// here means the healthy-network packet simulator no longer produces
// bit-identical output with faults off — which this PR promised not to do.
TEST(FaultOffBitIdentity, A3PanelConfigMatchesPreFaultGolden) {
  net::PacketSimConfig a3;
  a3.node_count = 40;
  a3.field_side = u::Length(45.0);
  a3.radio_range = u::Length(16.0);
  a3.report_period = u::Time(10.0);
  a3.duration = u::Time(3600.0);
  a3.seed = 9;
  EXPECT_EQ(packet_sim_checksum(a3), 13597430695780601274ULL);
}

TEST(FaultOffBitIdentity, LinkErrorConfigMatchesPreFaultGolden) {
  net::PacketSimConfig le;
  le.duration = u::Time(1200.0);
  le.seed = 7;
  le.model_link_errors = true;
  EXPECT_EQ(packet_sim_checksum(le), 12763965287687888807ULL);
}

TEST(FaultDeterminism, ArmedRunIsAPureFunctionOfConfig) {
  net::PacketSimConfig cfg;
  cfg.node_count = 30;
  cfg.duration = u::Time(1800.0);
  cfg.seed = 4;
  cfg.faults = stress_faults();

  const auto a = net::simulate_packets(cfg);
  const auto b = net::simulate_packets(cfg);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.missed_reports, b.missed_reports);
  EXPECT_EQ(a.lost_no_route, b.lost_no_route);
  EXPECT_EQ(a.lost_in_flight, b.lost_in_flight);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.corrupted_attempts, b.corrupted_attempts);
  EXPECT_EQ(a.reroutes, b.reroutes);
  fault::Digest da, db;
  da.fold(a.availability);
  da.fold(a.mttf_s);
  da.fold(a.mttr_s);
  db.fold(b.availability);
  db.fold(b.mttf_s);
  db.fold(b.mttr_s);
  EXPECT_EQ(da.value(), db.value());
}

TEST(FaultDeterminism, StudyChecksumIdenticalAcrossPoolSizes) {
  constexpr std::size_t kReps = 8;
  constexpr std::uint64_t kRoot = 99;

  exec::ExecConfig one, two, eight;
  one.threads = 1;
  two.threads = 2;
  eight.threads = 8;

  const auto r1 =
      fault::run_availability_study(kReps, kRoot, faulty_replication, one);
  const auto r2 =
      fault::run_availability_study(kReps, kRoot, faulty_replication, two);
  const auto r8 =
      fault::run_availability_study(kReps, kRoot, faulty_replication, eight);

  ASSERT_EQ(r1.replications.size(), kReps);
  EXPECT_EQ(r1.checksum, r2.checksum);
  EXPECT_EQ(r1.checksum, r8.checksum);
  // Spot-check the aggregates too, not just the digest.
  EXPECT_DOUBLE_EQ(r1.delivered_fraction.mean(), r8.delivered_fraction.mean());
  EXPECT_DOUBLE_EQ(r1.availability.mean(), r2.availability.mean());
  // The study actually exercised faults.
  EXPECT_LT(r1.delivered_fraction.mean(), 1.0);
  EXPECT_GT(r1.delivered_fraction.mean(), 0.0);
}
