#include "ambisim/fault/injector.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "ambisim/fault/schedule.hpp"
#include "ambisim/sim/simulator.hpp"

using namespace ambisim;
namespace u = ambisim::units;
using fault::EnergyCouplingConfig;
using fault::FaultInjector;
using fault::FaultSchedule;
using fault::FaultScheduleConfig;
using fault::NodeState;
using fault::RetryPolicy;

namespace {

/// A hand-written script: node 1 crashes at t=100 for 50 s (boot tail 5 s),
/// node 2's radio fades at t=200 for 30 s.
FaultSchedule scripted() {
  FaultScheduleConfig cfg;
  cfg.node_count = 4;
  cfg.horizon_s = 1000.0;
  cfg.seed = 5;
  cfg.crash_mttf_s = 1e12;  // effectively never; we only want the config
  auto sched = FaultSchedule::generate(cfg);
  EXPECT_TRUE(sched.empty());
  return sched;
}

}  // namespace

TEST(RetryPolicy, BackoffGrowsExponentiallyAndCaps) {
  const RetryPolicy p{/*max_attempts=*/6, /*timeout_s=*/0.25,
                      /*backoff=*/2.0, /*max_backoff_s=*/1.5};
  EXPECT_DOUBLE_EQ(p.backoff_delay(2), 0.25);  // first retry
  EXPECT_DOUBLE_EQ(p.backoff_delay(3), 0.5);
  EXPECT_DOUBLE_EQ(p.backoff_delay(4), 1.0);
  EXPECT_DOUBLE_EQ(p.backoff_delay(5), 1.5);   // capped
  EXPECT_DOUBLE_EQ(p.backoff_delay(6), 1.5);
}

TEST(FaultInjector, ScriptedCrashDrivesLifecycle) {
  FaultScheduleConfig cfg;
  cfg.node_count = 3;
  cfg.horizon_s = 600.0;
  cfg.seed = 11;
  cfg.crash_mttf_s = 150.0;  // a few crashes in the horizon
  cfg.crash_mttr_s = 40.0;
  cfg.reboot_s = 5.0;
  FaultInjector inj(FaultSchedule::generate(cfg));

  std::vector<NodeState> seen;
  inj.on_transition([&](int, NodeState, NodeState now, double) {
    seen.push_back(now);
  });

  sim::Simulator simu;
  inj.arm(simu, cfg.node_count);
  simu.run_until(u::Time(cfg.horizon_s));

  // The full cycle Dead -> Rebooting -> Up appears, in that order.
  bool saw_dead = false, saw_reboot = false, saw_up = false;
  for (NodeState s : seen) {
    if (s == NodeState::Dead) saw_dead = true;
    if (s == NodeState::Rebooting) saw_reboot = saw_dead;
    if (s == NodeState::Up) saw_up = saw_reboot;
  }
  EXPECT_TRUE(saw_dead);
  EXPECT_TRUE(saw_reboot);
  EXPECT_TRUE(saw_up);

  const auto st = inj.stats(cfg.horizon_s);
  EXPECT_GT(st.failures, 0u);
  EXPECT_GT(st.mttr_s, 0.0);
  EXPECT_LT(st.availability, 1.0);
  EXPECT_GT(st.availability, 0.0);
}

TEST(FaultInjector, RadioOutageLeavesNodeAliveButOutOfService) {
  FaultScheduleConfig cfg;
  cfg.node_count = 3;
  cfg.horizon_s = 500.0;
  cfg.seed = 3;
  cfg.link_mtbf_s = 100.0;
  cfg.link_mttr_s = 50.0;
  FaultInjector inj(FaultSchedule::generate(cfg));

  bool saw_alive_but_out = false;
  sim::Simulator simu;
  inj.on_transition([&](int node, NodeState, NodeState, double) {
    if (inj.alive(node) && !inj.in_service(node) && inj.radio_down(node))
      saw_alive_but_out = true;
  });
  inj.arm(simu, cfg.node_count);
  simu.run_until(u::Time(cfg.horizon_s));
  EXPECT_TRUE(saw_alive_but_out);
}

TEST(FaultInjector, EnergyCouplingBrownsOutAndRecovers) {
  // No script at all: the node must die from energy and come back from
  // harvest, purely through the battery hysteresis.
  FaultScheduleConfig cfg;
  cfg.node_count = 2;
  cfg.horizon_s = 4000.0;
  auto sched = FaultSchedule::generate(cfg);
  ASSERT_TRUE(sched.empty());
  FaultInjector inj(std::move(sched));

  EnergyCouplingConfig ec;
  ec.battery = energy::Battery::thin_film_1mAh();
  ec.initial_soc = 0.06;
  ec.brownout_cutoff_soc = 0.04;
  ec.brownout_recovery_soc = 0.10;
  // Draw beats harvest while up (net -1.5 mW empties the 2% band in
  // ~2.5 min of sim time); once browned out only shelf drain applies and
  // the 0.5 mW harvest refills to the recovery threshold.
  ec.baseline_watt = 2e-3;
  ec.harvest_avg_watt = 0.5e-3;
  ec.update_period_s = 1.0;
  inj.enable_energy(ec);

  int brownouts = 0, recoveries = 0;
  inj.on_transition([&](int node, NodeState prev, NodeState now, double) {
    EXPECT_EQ(node, 1);  // sink immune
    if (now == NodeState::BrownOut) ++brownouts;
    if (prev == NodeState::BrownOut && now == NodeState::Up) ++recoveries;
  });

  sim::Simulator simu;
  inj.arm(simu, cfg.node_count);
  simu.run_until(u::Time(cfg.horizon_s));

  EXPECT_GE(brownouts, 1);
  EXPECT_GE(recoveries, 1);
  ASSERT_NE(inj.battery(1), nullptr);
  EXPECT_EQ(inj.battery(0), nullptr);  // sink carries no battery model
  const auto st = inj.stats(cfg.horizon_s);
  EXPECT_LT(st.availability, 1.0);
}

TEST(FaultInjector, AccountedEventEnergyDrainsTheBattery) {
  FaultScheduleConfig cfg;
  cfg.node_count = 2;
  cfg.horizon_s = 100.0;
  FaultInjector inj(FaultSchedule::generate(cfg));
  EnergyCouplingConfig ec;
  ec.battery = energy::Battery::coin_cell_cr2032();
  ec.baseline_watt = 0.0;
  ec.update_period_s = 1.0;
  inj.enable_energy(ec);

  sim::Simulator simu;
  inj.arm(simu, cfg.node_count);
  simu.schedule_at(u::Time(0.5),
                   [&inj]() { inj.account_energy(1, u::Energy(0.05)); });
  simu.run_until(u::Time(10.0));
  const energy::Battery* bat = inj.battery(1);
  ASSERT_NE(bat, nullptr);
  // 50 mJ event charge (plus shelf drain) left the pack.
  EXPECT_LT(bat->remaining().value(), bat->capacity().value() - 0.049);
}

TEST(FaultInjector, CorruptionHashIsPureAndRateBounded) {
  FaultScheduleConfig cfg;
  cfg.node_count = 8;
  cfg.corruption_rate = 0.1;
  FaultInjector a(FaultSchedule::generate(cfg));
  FaultInjector b(FaultSchedule::generate(cfg));

  int corrupted = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    const bool va = a.corrupts(1, 2, static_cast<std::uint64_t>(t));
    EXPECT_EQ(va, b.corrupts(1, 2, static_cast<std::uint64_t>(t)));
    corrupted += va;
  }
  const double rate = static_cast<double>(corrupted) / trials;
  EXPECT_NEAR(rate, 0.1, 0.02);

  cfg.corruption_rate = 0.0;
  FaultInjector off(FaultSchedule::generate(cfg));
  EXPECT_FALSE(off.corrupts(1, 2, 1));
  cfg.corruption_rate = 1.0;
  FaultInjector all(FaultSchedule::generate(cfg));
  EXPECT_TRUE(all.corrupts(1, 2, 1));
}

TEST(FaultInjector, StatsWithNoFaultsAreClean) {
  FaultInjector inj(scripted());
  sim::Simulator simu;
  inj.arm(simu, 4);
  simu.run_until(u::Time(1000.0));
  const auto st = inj.stats(1000.0);
  EXPECT_DOUBLE_EQ(st.availability, 1.0);
  EXPECT_EQ(st.failures, 0u);
  EXPECT_DOUBLE_EQ(st.mttf_s, 1000.0);  // censored at the horizon
  EXPECT_DOUBLE_EQ(st.mttr_s, 0.0);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(inj.state(i), NodeState::Up);
    EXPECT_TRUE(inj.in_service(i));
    EXPECT_DOUBLE_EQ(inj.drift_factor(i), 1.0);
  }
}

TEST(FaultInjector, ArmGuards) {
  FaultInjector inj(scripted());
  sim::Simulator simu;
  EXPECT_THROW(inj.arm(simu, 0), std::invalid_argument);
  inj.arm(simu, 4);
  EXPECT_THROW(inj.arm(simu, 4), std::logic_error);
  EXPECT_THROW(inj.enable_energy(EnergyCouplingConfig{}), std::logic_error);
}
