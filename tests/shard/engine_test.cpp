// The sharded engine's bit-identity contract: every (shard count, pool
// size) combination must checksum-match the single-kernel serial oracle,
// across routing policies, link-error models, and placements — plus the
// rejection paths (faults, zero lookahead, the legacy kernel's knob).
#include "ambisim/shard/engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "ambisim/net/packet_sim.hpp"
#include "ambisim/shard/partition.hpp"

namespace {

using ambisim::net::PacketSimConfig;
using ambisim::net::PacketSimResult;
using ambisim::shard::digest_packets;
using ambisim::shard::run_serial_oracle;
using ambisim::shard::ShardRunConfig;
using ambisim::shard::ShardRunResult;
using ambisim::shard::simulate_packets_sharded;
namespace u = ambisim::units;

/// Small but multi-hop workload: ~4 reports per source over the horizon.
PacketSimConfig base_config() {
  PacketSimConfig cfg;
  cfg.node_count = 30;
  cfg.field_side = u::Length(40.0);
  cfg.radio_range = u::Length(15.0);
  cfg.report_period = u::Time(3.0);
  cfg.duration = u::Time(12.0);
  cfg.seed = 42;
  return cfg;
}

void expect_matches_oracle(const PacketSimConfig& cfg,
                           const std::string& label) {
  const PacketSimResult oracle = run_serial_oracle(cfg);
  const std::uint64_t want = digest_packets(oracle);
  for (const int shards : {1, 2, 4, 8}) {
    for (const int pool : {1, 2, 8}) {
      const ShardRunResult got =
          simulate_packets_sharded(cfg, {shards, pool});
      EXPECT_EQ(got.checksum, want)
          << label << ": shards " << shards << ", pool " << pool;
      EXPECT_EQ(got.packets.generated, oracle.generated) << label;
      EXPECT_EQ(got.packets.delivered, oracle.delivered) << label;
      EXPECT_EQ(got.packets.undeliverable, oracle.undeliverable) << label;
      EXPECT_EQ(got.shard_count, shards);
      EXPECT_GT(got.windows, 0) << label;
      EXPECT_GT(got.lookahead_s, 0.0) << label;
    }
  }
}

TEST(ShardEngineTest, MatchesOracleAcrossShardAndPoolMatrix) {
  expect_matches_oracle(base_config(), "min_hop");
}

TEST(ShardEngineTest, MatchesOracleWithMinEnergyRouting) {
  PacketSimConfig cfg = base_config();
  cfg.routing = ambisim::net::RoutingPolicy::MinEnergy;
  expect_matches_oracle(cfg, "min_energy");
}

TEST(ShardEngineTest, MatchesOracleWithLinkErrors) {
  PacketSimConfig cfg = base_config();
  cfg.model_link_errors = true;
  expect_matches_oracle(cfg, "link_errors");
}

TEST(ShardEngineTest, MatchesOracleWithSparseLinks) {
  PacketSimConfig cfg = base_config();
  cfg.model_link_errors = true;
  cfg.sparse_links = true;
  expect_matches_oracle(cfg, "sparse_links");
}

TEST(ShardEngineTest, MatchesOracleOnGridPlacement) {
  PacketSimConfig cfg = base_config();
  cfg.node_count = 36;
  cfg.placement =
      ambisim::net::Topology::grid(cfg.node_count, u::Length(8.0));
  expect_matches_oracle(cfg, "grid");
}

TEST(ShardEngineTest, PartitionCutsRoutingTreeAndStillMatches) {
  // A 6x6 grid at 8 m pitch with 15 m range routes multi-hop; any 4-way
  // spatial split must cut tree edges, and the windows must carry real
  // boundary traffic without perturbing the checksum.
  PacketSimConfig cfg = base_config();
  cfg.node_count = 36;
  cfg.placement =
      ambisim::net::Topology::grid(cfg.node_count, u::Length(8.0));

  const ambisim::shard::RegionPartition part =
      ambisim::shard::RegionPartition::build(*cfg.placement, 4, 15.0);
  const ambisim::net::Adjacency adj =
      cfg.placement->neighbor_table(u::Length(15.0));
  const ambisim::net::RoutingTree tree =
      ambisim::net::min_hop_routes(*cfg.placement, adj);
  EXPECT_GT(part.cut_tree_edges(tree), 0u);

  const ShardRunResult got = simulate_packets_sharded(cfg, {4, 2});
  EXPECT_EQ(got.checksum, digest_packets(run_serial_oracle(cfg)));
  EXPECT_GT(got.boundary_messages, 0);
  EXPECT_GT(got.cross_edges, 0u);
}

TEST(ShardEngineTest, MoreShardsThanOccupiedCellsStillMatches) {
  // Empty regions idle through every window without disturbing identity.
  PacketSimConfig cfg = base_config();
  cfg.node_count = 6;
  const PacketSimResult oracle = run_serial_oracle(cfg);
  const ShardRunResult got = simulate_packets_sharded(cfg, {8, 2});
  EXPECT_EQ(got.checksum, digest_packets(oracle));
}

TEST(ShardEngineTest, CoincidentPlacementCollapsesToOneRegion) {
  PacketSimConfig cfg = base_config();
  cfg.node_count = 10;
  cfg.placement = ambisim::net::Topology(std::vector<ambisim::net::Point>(
      10, ambisim::net::Point{1.0, 1.0}));
  const ShardRunResult got = simulate_packets_sharded(cfg, {4, 2});
  EXPECT_EQ(got.checksum, digest_packets(run_serial_oracle(cfg)));
  EXPECT_EQ(got.boundary_messages, 0);
}

TEST(ShardEngineTest, SerialOracleMatchesResultFieldsExactly) {
  const PacketSimConfig cfg = base_config();
  const PacketSimResult oracle = run_serial_oracle(cfg);
  const ShardRunResult got = simulate_packets_sharded(cfg, {4, 8});
  EXPECT_EQ(got.packets.end_to_end_latency.count(),
            oracle.end_to_end_latency.count());
  EXPECT_EQ(got.packets.end_to_end_latency.values(),
            oracle.end_to_end_latency.values());
  EXPECT_EQ(got.packets.queueing_delay.values(),
            oracle.queueing_delay.values());
  EXPECT_EQ(got.packets.mean_hops, oracle.mean_hops);
  EXPECT_EQ(got.packets.mean_link_attempts, oracle.mean_link_attempts);
  EXPECT_EQ(got.packets.ledger.of("radio-tx").value(),
            oracle.ledger.of("radio-tx").value());
  EXPECT_EQ(got.packets.ledger.of("radio-rx").value(),
            oracle.ledger.of("radio-rx").value());
  EXPECT_EQ(got.packets.energy_per_delivered.value(),
            oracle.energy_per_delivered.value());
}

TEST(ShardEngineTest, RejectsFaultInjection) {
  PacketSimConfig cfg = base_config();
  cfg.faults.emplace();
  EXPECT_THROW(simulate_packets_sharded(cfg, {2, 1}),
               std::invalid_argument);
  EXPECT_THROW(run_serial_oracle(cfg), std::invalid_argument);
}

TEST(ShardEngineTest, LegacyKernelRefusesShardKnob) {
  PacketSimConfig cfg = base_config();
  cfg.shards = 2;
  EXPECT_THROW(ambisim::net::simulate_packets(cfg), std::invalid_argument);
}

TEST(ShardEngineTest, RejectsZeroLookaheadWithClearError) {
  PacketSimConfig cfg = base_config();
  cfg.packet_bits = u::Information(0.0);  // zero airtime...
  cfg.radio.startup = u::Time(0.0);       // ...and zero turnaround
  try {
    (void)simulate_packets_sharded(cfg, {2, 1});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("lookahead"), std::string::npos)
        << e.what();
  }
}

TEST(ShardEngineTest, RejectsBadRunConfig) {
  const PacketSimConfig cfg = base_config();
  EXPECT_THROW(simulate_packets_sharded(cfg, {0, 1}),
               std::invalid_argument);
  EXPECT_THROW(simulate_packets_sharded(cfg, {-1, 1}),
               std::invalid_argument);
  EXPECT_THROW(simulate_packets_sharded(cfg, {2, -1}),
               std::invalid_argument);
}

TEST(ShardEngineTest, RunIsRepeatable) {
  const PacketSimConfig cfg = base_config();
  const ShardRunResult a = simulate_packets_sharded(cfg, {4, 8});
  const ShardRunResult b = simulate_packets_sharded(cfg, {4, 8});
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.windows, b.windows);
  EXPECT_EQ(a.boundary_messages, b.boundary_messages);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

}  // namespace
