// run.shards through the scenario stack: loader parsing + composition
// rules, opt-in serialization (canonical JSON unchanged when unset),
// lowering into PacketSimConfig, and run_scenario checksum identity
// between sharded and unsharded execution — inline and on the committed
// spec scenario_runner ships.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "ambisim/scen/build.hpp"
#include "ambisim/scen/loader.hpp"
#include "ambisim/scen/spec.hpp"

namespace {

using ambisim::scen::LoadResult;
using ambisim::scen::Loader;
using ambisim::scen::RunOverrides;
using ambisim::scen::to_json;

constexpr const char* kShardedNet = R"({
  "fleet": [ { "group": "sensors", "class": "microwatt", "count": 20 } ],
  "topology": { "field_side_m": 40, "radio_range_m": 15 },
  "workload": { "report_period_s": 4 },
  "run": { "duration_s": 16, "seed": 3, "shards": 4 },
})";

bool has_diag(const LoadResult& r, const std::string& needle) {
  return std::any_of(r.diagnostics.begin(), r.diagnostics.end(),
                     [&](const auto& d) {
                       return d.format().find(needle) != std::string::npos;
                     });
}

TEST(ShardScenTest, LoaderParsesRunShards) {
  const auto r = Loader{}.load_text(kShardedNet);
  ASSERT_TRUE(r.ok()) << r.format_diagnostics();
  EXPECT_EQ(r.spec->run.shards, 4);
}

TEST(ShardScenTest, ShardsSerializedOnlyWhenSet) {
  const auto sharded = Loader{}.load_text(kShardedNet);
  ASSERT_TRUE(sharded.ok()) << sharded.format_diagnostics();
  EXPECT_NE(to_json(*sharded.spec).find("\"shards\""), std::string::npos);

  // An unsharded spec's canonical JSON must not grow the key (fuzzer
  // goldens hash this form).
  const auto plain = Loader{}.load_text(R"({
    "fleet": [ { "group": "sensors", "class": "microwatt", "count": 8 } ],
  })");
  ASSERT_TRUE(plain.ok()) << plain.format_diagnostics();
  EXPECT_EQ(plain.spec->run.shards, 0);
  EXPECT_EQ(to_json(*plain.spec).find("\"shards\""), std::string::npos);
}

TEST(ShardScenTest, CanonicalJsonRoundTripsShards) {
  const auto first = Loader{}.load_text(kShardedNet);
  ASSERT_TRUE(first.ok()) << first.format_diagnostics();
  const std::string json = to_json(*first.spec);
  const auto second = Loader{}.load_text(json);
  ASSERT_TRUE(second.ok()) << second.format_diagnostics();
  EXPECT_EQ(second.spec->run.shards, 4);
  EXPECT_EQ(to_json(*second.spec), json);
}

TEST(ShardScenTest, RejectsShardsWithFaults) {
  const auto r = Loader{}.load_text(R"({
    "fleet": [ { "group": "sensors", "class": "microwatt", "count": 8 } ],
    "faults": { "crash_mttf_s": 3600 },
    "run": { "shards": 2 },
  })");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_diag(r, "$.run.shards")) << r.format_diagnostics();
  EXPECT_TRUE(has_diag(r, "fault")) << r.format_diagnostics();
}

TEST(ShardScenTest, RejectsShardsWithBatteryFleet) {
  const auto r = Loader{}.load_text(R"({
    "fleet": [
      {
        "group": "sensors", "class": "microwatt", "count": 8,
        "battery": { "kind": "thin_film_1mAh" },
      },
    ],
    "run": { "shards": 2 },
  })");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_diag(r, "$.run.shards")) << r.format_diagnostics();
  EXPECT_TRUE(has_diag(r, "battery")) << r.format_diagnostics();
}

TEST(ShardScenTest, RejectsShardsOnAmiEngine) {
  const auto r = Loader{}.load_text(R"({
    "fleet": [
      { "class": "microwatt", "count": 4 },
      { "class": "milliwatt", "count": 1 },
      { "class": "watt", "count": 1 },
    ],
    "run": { "shards": 2 },
  })");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_diag(r, "$.run.shards")) << r.format_diagnostics();
}

TEST(ShardScenTest, BuildLowersShardsIntoPacketConfig) {
  const auto r = Loader{}.load_text(kShardedNet);
  ASSERT_TRUE(r.ok()) << r.format_diagnostics();
  EXPECT_EQ(ambisim::scen::build_packet_config(*r.spec).shards, 4);
}

TEST(ShardScenTest, RunScenarioChecksumIdenticalAcrossShardCounts) {
  const auto r = Loader{}.load_text(kShardedNet);
  ASSERT_TRUE(r.ok()) << r.format_diagnostics();

  RunOverrides one;
  one.shards = 1;
  const auto serial = ambisim::scen::run_scenario(*r.spec, one);

  for (const int shards : {2, 4, 8}) {
    RunOverrides ov;
    ov.shards = shards;
    const auto got = ambisim::scen::run_scenario(*r.spec, ov);
    EXPECT_EQ(got.checksum, serial.checksum) << "shards " << shards;
  }
}

TEST(ShardScenTest, CommittedShardSpecIsShardCountInvariant) {
  const std::string path =
      std::string(AMBISIM_SCENARIO_DIR) + "/microwatt_shard.scen.json";
  const auto r = Loader{}.load_file(path);
  ASSERT_TRUE(r.ok()) << r.format_diagnostics();
  EXPECT_EQ(r.spec->run.shards, 4);

  RunOverrides one;
  one.replications = 1;
  one.shards = 1;
  const auto serial = ambisim::scen::run_scenario(*r.spec, one);

  RunOverrides four;
  four.replications = 1;
  four.shards = 4;
  const auto sharded = ambisim::scen::run_scenario(*r.spec, four);

  EXPECT_EQ(sharded.checksum, serial.checksum);
  EXPECT_TRUE(sharded.assertions_passed);
}

}  // namespace
