// Region partition: determinism, node-count balance, degenerate layouts
// (coincident clouds, more shards than cells), and the cut-edge helpers
// the engine's sync accounting reads.
#include "ambisim/shard/partition.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

#include "ambisim/net/topology.hpp"
#include "ambisim/sim/random.hpp"

namespace {

using ambisim::net::Adjacency;
using ambisim::net::Point;
using ambisim::net::RoutingTree;
using ambisim::net::Topology;
using ambisim::shard::RegionPartition;
namespace u = ambisim::units;

Topology random_topo(int n, double side, unsigned seed) {
  ambisim::sim::Rng rng(seed);
  return Topology::random_field(n, u::Length(side), rng);
}

TEST(ShardPartitionTest, OwnerAndNodesAgreeAndCoverEveryNode) {
  const Topology topo = random_topo(200, 60.0, 11);
  const RegionPartition part = RegionPartition::build(topo, 4, 15.0);
  ASSERT_EQ(part.shard_count, 4);
  ASSERT_EQ(static_cast<int>(part.owner.size()), topo.size());
  ASSERT_EQ(part.nodes.size(), 4u);

  std::set<int> seen;
  for (int s = 0; s < 4; ++s) {
    int prev = -1;
    for (const int i : part.nodes[static_cast<std::size_t>(s)]) {
      EXPECT_EQ(part.owner[static_cast<std::size_t>(i)], s);
      EXPECT_GT(i, prev) << "node lists must be ascending";
      prev = i;
      seen.insert(i);
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), topo.size());
}

TEST(ShardPartitionTest, BuildIsDeterministic) {
  const Topology topo = random_topo(150, 50.0, 7);
  const RegionPartition a = RegionPartition::build(topo, 8, 15.0);
  const RegionPartition b = RegionPartition::build(topo, 8, 15.0);
  EXPECT_EQ(a.owner, b.owner);
  EXPECT_EQ(a.nodes, b.nodes);
}

TEST(ShardPartitionTest, BalancedByNodeCountOnUniformField) {
  const Topology topo = random_topo(400, 80.0, 3);
  const RegionPartition part = RegionPartition::build(topo, 4, 10.0);
  // Quota dealing bounds each shard by (n / shards) plus one cell's worth;
  // a uniform field at this density keeps every region well populated.
  for (int s = 0; s < 4; ++s)
    EXPECT_GT(part.nodes[static_cast<std::size_t>(s)].size(), 40u);
  EXPECT_EQ(part.empty_shards(), 0);
}

TEST(ShardPartitionTest, CoincidentCloudCollapsesToOneShard) {
  // Every node at the same point: one occupied cell, so shard 0 owns all
  // of them and the rest are empty — a degenerate layout, not an error.
  const Topology topo(std::vector<Point>(12, Point{5.0, 5.0}));
  const RegionPartition part = RegionPartition::build(topo, 4, 15.0);
  EXPECT_EQ(part.nodes[0].size(), 12u);
  EXPECT_EQ(part.empty_shards(), 3);
  for (const int o : part.owner) EXPECT_EQ(o, 0);
}

TEST(ShardPartitionTest, MoreShardsThanNodesLeavesEmptyShards) {
  const Topology topo = random_topo(5, 40.0, 9);
  const RegionPartition part = RegionPartition::build(topo, 16, 15.0);
  EXPECT_EQ(part.shard_count, 16);
  EXPECT_GE(part.empty_shards(), 11);
  std::size_t total = 0;
  for (const auto& ns : part.nodes) total += ns.size();
  EXPECT_EQ(total, 5u);
}

TEST(ShardPartitionTest, RejectsInvalidArguments) {
  const Topology topo = random_topo(10, 40.0, 1);
  EXPECT_THROW(RegionPartition::build(topo, 0, 15.0),
               std::invalid_argument);
  EXPECT_THROW(RegionPartition::build(topo, -2, 15.0),
               std::invalid_argument);
  EXPECT_THROW(RegionPartition::build(topo, 2, 0.0),
               std::invalid_argument);
  EXPECT_THROW(RegionPartition::build(topo, 2, -1.0),
               std::invalid_argument);
}

TEST(ShardPartitionTest, CrossEdgeAndTreeCutCountsMatchManualScan) {
  const Topology topo = random_topo(120, 60.0, 21);
  const u::Length range(15.0);
  const Adjacency adj = topo.neighbor_table(range);
  const RoutingTree tree = ambisim::net::min_hop_routes(topo, adj);
  const RegionPartition part = RegionPartition::build(topo, 4, 15.0);

  std::size_t cross = 0;
  for (int i = 0; i < adj.size(); ++i) {
    const Adjacency::Row row = adj.row(i);
    for (std::size_t k = 0; k < row.count; ++k)
      if (part.is_cross(i, row.ids[k])) ++cross;
  }
  EXPECT_EQ(part.cross_edge_count(adj), cross);

  std::size_t cut = 0;
  for (std::size_t i = 0; i < tree.next_hop.size(); ++i) {
    const int hop = tree.next_hop[i];
    if (hop < 0 || hop == static_cast<int>(i)) continue;
    if (part.is_cross(static_cast<int>(i), hop)) ++cut;
  }
  EXPECT_EQ(part.cut_tree_edges(tree), cut);
  // A 60 m field split four ways with 15 m routes must cut something.
  EXPECT_GT(cut, 0u);
}

}  // namespace
