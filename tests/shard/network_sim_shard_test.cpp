// The epoch simulator's relay-walk sharding: any block count must be
// bit-identical to the serial walk (relay counts are integral doubles, so
// the per-block merge is exact), across routing policies and aggregation.
#include <gtest/gtest.h>

#include <stdexcept>

#include "ambisim/net/network_sim.hpp"

namespace {

using ambisim::net::SensorNetworkConfig;
using ambisim::net::SensorNetworkResult;
using ambisim::net::simulate_sensor_network;
namespace u = ambisim::units;

SensorNetworkConfig base_config() {
  SensorNetworkConfig cfg;
  cfg.node_count = 40;
  cfg.seed = 5;
  return cfg;
}

void expect_identical(const SensorNetworkResult& a,
                      const SensorNetworkResult& b, int shards) {
  EXPECT_EQ(a.first_node_death.value(), b.first_node_death.value())
      << "shards " << shards;
  EXPECT_EQ(a.half_network_death.value(), b.half_network_death.value());
  EXPECT_EQ(a.simulated.value(), b.simulated.value());
  EXPECT_EQ(a.packets_generated, b.packets_generated);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.delivery_ratio, b.delivery_ratio);
  EXPECT_EQ(a.mean_hops, b.mean_hops);
  EXPECT_EQ(a.hotspot_factor, b.hotspot_factor);
  EXPECT_EQ(a.unreachable_nodes, b.unreachable_nodes);
  EXPECT_EQ(a.energy_spent, b.energy_spent);
  EXPECT_EQ(a.node_lifetimes.values(), b.node_lifetimes.values());
  EXPECT_EQ(a.ledger.of("listen-baseline").value(),
            b.ledger.of("listen-baseline").value());
  EXPECT_EQ(a.ledger.of("source-tx").value(),
            b.ledger.of("source-tx").value());
  EXPECT_EQ(a.ledger.of("relay-fwd").value(),
            b.ledger.of("relay-fwd").value());
  EXPECT_EQ(a.ledger.of("sink-rx").value(),
            b.ledger.of("sink-rx").value());
}

TEST(ShardNetworkSimTest, ShardedWalkBitIdenticalToSerial) {
  const SensorNetworkConfig cfg = base_config();
  SensorNetworkConfig serial = cfg;
  serial.shards = 0;
  const SensorNetworkResult want = simulate_sensor_network(serial);
  for (const int shards : {1, 3, 8}) {
    SensorNetworkConfig c = cfg;
    c.shards = shards;
    expect_identical(want, simulate_sensor_network(c), shards);
  }
}

TEST(ShardNetworkSimTest, HoldsUnderMinEnergyAndAggregation) {
  SensorNetworkConfig cfg = base_config();
  cfg.routing = ambisim::net::RoutingPolicy::MinEnergy;
  cfg.aggregate_at_relays = true;
  cfg.harvest_avg_watt = 2e-5;
  cfg.max_sim_time = u::Time(86400.0 * 30);
  SensorNetworkConfig serial = cfg;
  serial.shards = 0;
  const SensorNetworkResult want = simulate_sensor_network(serial);
  for (const int shards : {2, 7}) {
    SensorNetworkConfig c = cfg;
    c.shards = shards;
    expect_identical(want, simulate_sensor_network(c), shards);
  }
}

TEST(ShardNetworkSimTest, MoreBlocksThanSourcesStillIdentical) {
  SensorNetworkConfig cfg = base_config();
  cfg.node_count = 6;
  SensorNetworkConfig serial = cfg;
  const SensorNetworkResult want = simulate_sensor_network(serial);
  cfg.shards = 32;
  expect_identical(want, simulate_sensor_network(cfg), 32);
}

TEST(ShardNetworkSimTest, RejectsNegativeShards) {
  SensorNetworkConfig cfg = base_config();
  cfg.shards = -1;
  EXPECT_THROW(simulate_sensor_network(cfg), std::invalid_argument);
}

}  // namespace
