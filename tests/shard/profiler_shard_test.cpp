// The profiling layer's two engine-facing contracts:
//
//  * ProfilerPurity — attaching an obs::Profiler (by config pointer or by
//    thread-local binding) to a sharded or legacy packet run changes no
//    digest, at every shard x pool combination the bench gates.  This is
//    the test-suite form of bench_profile's purity gate, and it holds
//    whether observability is compiled in or out.
//
//  * ProfilerShard — when observability IS compiled in, the profile the
//    engine fills agrees with the engine's own result counters: windows,
//    boundary reschedules, executed events, worker count, task totals,
//    and the shared phase vocabulary.
#include <cstdint>
#include <string_view>

#include <gtest/gtest.h>

#include "ambisim/net/packet_sim.hpp"
#include "ambisim/obs/profiler.hpp"
#include "ambisim/shard/engine.hpp"

namespace {

using ambisim::net::PacketSimConfig;
using ambisim::net::PacketSimResult;
using ambisim::obs::Profiler;
using ambisim::obs::ProfilerBinding;
using ambisim::shard::digest_packets;
using ambisim::shard::run_serial_oracle;
using ambisim::shard::ShardRunConfig;
using ambisim::shard::ShardRunResult;
using ambisim::shard::simulate_packets_sharded;
namespace u = ambisim::units;

/// Multi-hop workload with boundary traffic at every shard count.
PacketSimConfig base_config() {
  PacketSimConfig cfg;
  cfg.node_count = 48;
  cfg.field_side = u::Length(50.0);
  cfg.radio_range = u::Length(15.0);
  cfg.report_period = u::Time(3.0);
  cfg.duration = u::Time(12.0);
  cfg.model_link_errors = true;
  cfg.seed = 913;
  return cfg;
}

TEST(ProfilerPurity, ShardedDigestsIdenticalWithAndWithoutProfiler) {
  const PacketSimConfig cfg = base_config();
  const std::uint64_t want = digest_packets(run_serial_oracle(cfg));
  for (const int shards : {1, 4}) {
    for (const int pool : {1, 8}) {
      const ShardRunResult plain =
          simulate_packets_sharded(cfg, {shards, pool});
      Profiler prof;
      ShardRunConfig rc{shards, pool};
      rc.profiler = &prof;
      const ShardRunResult profiled = simulate_packets_sharded(cfg, rc);
      EXPECT_EQ(plain.checksum, want)
          << "shards " << shards << ", pool " << pool;
      EXPECT_EQ(profiled.checksum, want)
          << "profiled: shards " << shards << ", pool " << pool;
      EXPECT_EQ(profiled.events_executed, plain.events_executed);
      EXPECT_EQ(profiled.boundary_messages, plain.boundary_messages);
      EXPECT_EQ(profiled.windows, plain.windows);
    }
  }
}

TEST(ProfilerPurity, ThreadLocalBindingIsAlsoPure) {
  const PacketSimConfig cfg = base_config();
  const std::uint64_t want = digest_packets(run_serial_oracle(cfg));
  Profiler prof;
  ProfilerBinding bind(&prof);
  // The engines resolve current_profiler() when no config pointer is set.
  const ShardRunResult sharded = simulate_packets_sharded(cfg, {4, 2});
  EXPECT_EQ(sharded.checksum, want);
}

TEST(ProfilerPurity, LegacySerialSimulatorUnchangedUnderBinding) {
  const PacketSimConfig cfg = base_config();
  const PacketSimResult plain = ambisim::net::simulate_packets(cfg);
  Profiler prof;
  ProfilerBinding bind(&prof);
  const PacketSimResult profiled = ambisim::net::simulate_packets(cfg);
  EXPECT_EQ(digest_packets(profiled), digest_packets(plain));
  EXPECT_EQ(profiled.generated, plain.generated);
  EXPECT_EQ(profiled.delivered, plain.delivered);
}

#if AMBISIM_OBS_COMPILED

TEST(ProfilerShard, ProfileAgreesWithTheEngineResult) {
  const PacketSimConfig cfg = base_config();
  constexpr int kShards = 4;
  constexpr int kPool = 2;
  Profiler prof;
  ShardRunConfig rc{kShards, kPool};
  rc.profiler = &prof;
  const ShardRunResult res = simulate_packets_sharded(cfg, rc);

  EXPECT_EQ(prof.windows_total(), res.windows);
  EXPECT_EQ(static_cast<long long>(prof.windows().size()), res.windows)
      << "short run should be under the record cap";
  EXPECT_EQ(prof.boundary_rescheduled(), res.boundary_messages);
  EXPECT_GE(prof.boundary_gathered(), prof.boundary_rescheduled());

  std::uint64_t events = 0;
  for (const Profiler::Shard& s : prof.shards()) events += s.events;
  EXPECT_EQ(events, res.events_executed);
  EXPECT_EQ(prof.shards().size(), static_cast<std::size_t>(kShards));

  ASSERT_EQ(prof.workers().size(), static_cast<std::size_t>(kPool));
  std::uint64_t tasks = 0;
  for (const Profiler::Worker& w : prof.workers()) tasks += w.tasks;
  EXPECT_EQ(tasks, static_cast<std::uint64_t>(res.windows) * kShards)
      << "the engine submits one advance task per shard per window";
}

TEST(ProfilerShard, SerialAndShardedSharePhaseVocabulary) {
  const PacketSimConfig cfg = base_config();
  Profiler sharded_prof;
  ShardRunConfig rc{4, 2};
  rc.profiler = &sharded_prof;
  (void)simulate_packets_sharded(cfg, rc);

  Profiler serial_prof;
  {
    ProfilerBinding bind(&serial_prof);
    (void)ambisim::net::simulate_packets(cfg);
  }

  for (const std::string_view name :
       {"net.placement", "net.adjacency_build", "net.routing_build",
        "net.link_pricing", "net.event_loop"}) {
    EXPECT_NE(sharded_prof.find_phase(name), nullptr)
        << "sharded missing " << name;
    EXPECT_NE(serial_prof.find_phase(name), nullptr)
        << "serial missing " << name;
  }
}

TEST(ProfilerShard, ConfigPointerWinsOverTheBinding) {
  const PacketSimConfig cfg = base_config();
  Profiler bound, explicit_prof;
  ProfilerBinding bind(&bound);
  ShardRunConfig rc{2, 1};
  rc.profiler = &explicit_prof;
  (void)simulate_packets_sharded(cfg, rc);
  EXPECT_GT(explicit_prof.windows_total(), 0);
  EXPECT_EQ(bound.windows_total(), 0);
}

TEST(ProfilerShard, ProfilerReusableAcrossRunsAfterClear) {
  const PacketSimConfig cfg = base_config();
  Profiler prof;
  ShardRunConfig rc{2, 1};
  rc.profiler = &prof;
  const ShardRunResult first = simulate_packets_sharded(cfg, rc);
  const long long first_windows = prof.windows_total();
  prof.clear();
  EXPECT_TRUE(prof.empty());
  const ShardRunResult second = simulate_packets_sharded(cfg, rc);
  EXPECT_EQ(prof.windows_total(), first_windows);
  EXPECT_EQ(first.checksum, second.checksum);
}

#endif  // AMBISIM_OBS_COMPILED

}  // namespace
