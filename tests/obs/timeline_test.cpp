// Flight-recorder timeline semantics and the determinism contract:
//   1. Series recording modes (fixed cadence vs on-change) and queries.
//   2. Decimation is a pure function of the recorded stream.
//   3. merge_from is a sorted-multiset union: any grouping of the same
//      samples across shards merges to bit-identical series.
//   4. An availability study with probes armed produces a bit-identical
//      merged timeline at worker-pool sizes {1, 2, 8}.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "ambisim/fault/reliability.hpp"
#include "ambisim/net/packet_sim.hpp"
#include "ambisim/obs/obs.hpp"
#include "ambisim/obs/timeline.hpp"

using namespace ambisim;
namespace u = ambisim::units;
using obs::Sample;
using obs::Series;
using obs::Timeline;

TEST(Series, RecordAppendsAndQueriesAnswer) {
  Series s;
  s.record(0.0, 1.0);
  s.record(1.0, 3.0);
  s.record(2.0, 2.0);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.seen(), 3u);
  EXPECT_EQ(s.stride(), 1u);

  EXPECT_DOUBLE_EQ(s.last().t_s, 2.0);
  EXPECT_DOUBLE_EQ(s.last().value, 2.0);

  const Sample* at = s.last_before(1.5);
  ASSERT_NE(at, nullptr);
  EXPECT_DOUBLE_EQ(at->t_s, 1.0);
  EXPECT_DOUBLE_EQ(at->value, 3.0);
  EXPECT_EQ(s.last_before(-0.5), nullptr);

  const auto w = s.window(0.5, 2.0);
  EXPECT_EQ(w.count, 2u);
  EXPECT_DOUBLE_EQ(w.min, 2.0);
  EXPECT_DOUBLE_EQ(w.max, 3.0);
  EXPECT_DOUBLE_EQ(w.mean, 2.5);
  EXPECT_EQ(s.window(10.0, 20.0).count, 0u);
}

TEST(Series, RecordChangeDedupsAgainstLastAdmittedValue) {
  Series s;
  s.record_change(0.0, 1.0);
  s.record_change(1.0, 1.0);  // same value: dropped
  s.record_change(2.0, 2.0);
  s.record_change(3.0, 2.0);  // dropped
  s.record_change(4.0, 1.0);  // a *return* to an old value is an edge
  EXPECT_EQ(s.size(), 3u);
  // Dedup drops do not count as "seen": the decimation stride phase is a
  // function of admitted changes only.
  EXPECT_EQ(s.seen(), 3u);
  EXPECT_DOUBLE_EQ(s.samples()[1].t_s, 2.0);
  EXPECT_DOUBLE_EQ(s.samples()[2].t_s, 4.0);
}

TEST(Series, ResetStreamEndsTheDedupScopeOfRecordChange) {
  // Two streams recorded into one series (pool size 1) admit the same
  // multiset as the same streams recorded into two series and merged
  // (pool size 2) — the property the runner's per-replication
  // reset_streams() call exists to guarantee.
  Series shared;
  shared.record_change(0.0, 1.0);
  shared.record_change(5.0, 1.0);  // dropped: same stream, same value
  shared.reset_stream();
  shared.record_change(1.0, 1.0);  // admitted: new stream
  EXPECT_EQ(shared.size(), 2u);

  Series a, b;
  a.record_change(0.0, 1.0);
  a.record_change(5.0, 1.0);
  b.record_change(1.0, 1.0);
  Series merged;
  merged.merge_from(a);
  merged.merge_from(b);
  ASSERT_EQ(merged.size(), shared.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_DOUBLE_EQ(merged.samples()[i].t_s, shared.samples()[i].t_s);
    EXPECT_DOUBLE_EQ(merged.samples()[i].value, shared.samples()[i].value);
  }
}

TEST(Series, DecimationIsAPureFunctionOfTheRecordedStream) {
  // Two identical recording streams into bounded series end up with
  // identical samples, and the bound holds throughout.
  Series a(/*max_samples=*/16), b(/*max_samples=*/16);
  for (int i = 0; i < 1000; ++i) {
    const double t = 0.01 * i;
    const double v = (i * 37) % 101;
    a.record(t, v);
    EXPECT_LE(a.size(), 16u);
    b.record(t, v);
  }
  EXPECT_GT(a.stride(), 1u);
  EXPECT_EQ(a.seen(), 1000u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.samples()[i].t_s, b.samples()[i].t_s);
    EXPECT_DOUBLE_EQ(a.samples()[i].value, b.samples()[i].value);
  }
}

TEST(Series, MaxSamplesRoundsUpToAnEvenFloorOfTwo) {
  EXPECT_EQ(Series(1).max_samples(), 2u);
  EXPECT_EQ(Series(5).max_samples(), 6u);
  EXPECT_EQ(Series(6).max_samples(), 6u);
  EXPECT_EQ(Series(0).max_samples(), 0u);  // unbounded
}

TEST(Series, MergeIsIndependentOfGroupingAndOrder) {
  // The same 30 samples, split across shards two different ways and
  // merged in different orders, produce bit-identical series.
  std::vector<Sample> all;
  for (int i = 0; i < 30; ++i)
    all.push_back({0.5 * i, static_cast<double>((i * 13) % 7)});

  Series s1a, s1b, s2a, s2b, s2c;
  for (std::size_t i = 0; i < all.size(); ++i) {
    (i % 2 ? s1a : s1b).record(all[i].t_s, all[i].value);
    (i % 3 == 0 ? s2a : i % 3 == 1 ? s2b : s2c)
        .record(all[i].t_s, all[i].value);
  }

  Series m1;
  m1.merge_from(s1a);
  m1.merge_from(s1b);
  Series m2;
  m2.merge_from(s2c);  // deliberately reversed shard order
  m2.merge_from(s2b);
  m2.merge_from(s2a);

  ASSERT_EQ(m1.size(), all.size());
  ASSERT_EQ(m1.size(), m2.size());
  for (std::size_t i = 0; i < m1.size(); ++i) {
    EXPECT_DOUBLE_EQ(m1.samples()[i].t_s, m2.samples()[i].t_s);
    EXPECT_DOUBLE_EQ(m1.samples()[i].value, m2.samples()[i].value);
  }
}

TEST(Series, CompactReboundsAMergedSeries) {
  Series big(/*max_samples=*/8);
  Series src(/*max_samples=*/0);
  for (int i = 0; i < 40; ++i) src.record(static_cast<double>(i), 1.0 * i);
  big.merge_from(src);
  EXPECT_EQ(big.size(), 40u);  // merge never decimates
  big.compact();
  EXPECT_LE(big.size(), 8u);
  // The final sample always survives compaction.
  EXPECT_DOUBLE_EQ(big.last().t_s, 39.0);
}

TEST(TimelineTest, SeriesAreKeyedByNameAndNode) {
  Timeline tl;
  tl.series("soc", 0).record(1.0, 0.5);
  tl.series("soc", 1).record(1.0, 0.7);
  tl.series("queue", 0).record(2.0, 3.0);
  EXPECT_EQ(tl.series_count(), 3u);
  EXPECT_EQ(tl.sample_count(), 3u);
  ASSERT_NE(tl.find("soc", 1), nullptr);
  EXPECT_DOUBLE_EQ(tl.find("soc", 1)->last().value, 0.7);
  EXPECT_EQ(tl.find("soc", 9), nullptr);
  EXPECT_EQ(tl.find("absent", 0), nullptr);

  // entries() iterates in canonical (name, node) order.
  const auto es = tl.entries();
  ASSERT_EQ(es.size(), 3u);
  EXPECT_EQ(*es[0].name, "queue");
  EXPECT_EQ(*es[1].name, "soc");
  EXPECT_EQ(es[1].node, 0u);
  EXPECT_EQ(es[2].node, 1u);
}

TEST(TimelineTest, MergeFromMatchesByKeyAndCreatesAbsentSeries) {
  Timeline dst, src;
  dst.series("soc", 0).record(1.0, 0.5);
  src.series("soc", 0).record(2.0, 0.4);
  src.series("retry", 3).record(5.0, 2.0);
  dst.merge_from(src);
  EXPECT_EQ(dst.series_count(), 2u);
  EXPECT_EQ(dst.find("soc", 0)->size(), 2u);
  ASSERT_NE(dst.find("retry", 3), nullptr);
  EXPECT_DOUBLE_EQ(dst.find("retry", 3)->last().value, 2.0);
}

TEST(TimelineTest, DigestDistinguishesTimelinesAndMatchesEqualOnes) {
  Timeline a, b;
  a.series("soc", 0).record(1.0, 0.5);
  b.series("soc", 0).record(1.0, 0.5);
  EXPECT_EQ(a.digest(), b.digest());
  b.series("soc", 0).record(2.0, 0.25);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(TimelineTest, CsvAndJsonlExportsCoverEverySample) {
  Timeline tl;
  tl.series("soc", 2).record(1.5, 0.75);
  tl.series("queue", 0).record(3.0, 4.0);

  std::ostringstream csv;
  tl.write_csv(csv);
  EXPECT_EQ(csv.str(),
            "series,node,t_s,value\n"
            "queue,0,3,4\n"
            "soc,2,1.5,0.75\n");

  std::ostringstream jsonl;
  tl.write_jsonl(jsonl);
  const std::string out = jsonl.str();
  EXPECT_NE(out.find("{\"type\":\"sample\",\"name\":\"queue\",\"node\":0,"
                     "\"t_s\":3,\"value\":4}"),
            std::string::npos);
  EXPECT_NE(out.find("\"name\":\"soc\",\"node\":2"), std::string::npos);
}

TEST(TimelineTest, ResetValuesKeepsEntriesAndReferences) {
  Timeline tl;
  Series& s = tl.series("soc", 0);
  s.record(1.0, 0.5);
  tl.reset_values();
  EXPECT_EQ(tl.series_count(), 1u);
  EXPECT_EQ(tl.sample_count(), 0u);
  s.record(2.0, 0.25);  // reference survives reset_values
  EXPECT_EQ(tl.sample_count(), 1u);
}

// The study test needs the in-simulator probes, which an
// AMBISIM_OBS_DISABLED build compiles out (the Series/Timeline API above
// still exists and is tested either way).
#if AMBISIM_OBS_COMPILED

namespace {

// A small fault-armed packet study, sized for test time; every replication
// records battery, lifecycle, queue-depth, duty-cycle and retry series.
fault::ReliabilitySample tiny_faulty_replication(sim::Rng&,
                                                 std::size_t index) {
  net::PacketSimConfig cfg;
  cfg.node_count = 14;
  cfg.field_side = u::Length(28.0);
  cfg.radio_range = u::Length(14.0);
  cfg.duration = u::Time(300.0);
  cfg.seed = static_cast<unsigned>(100 + index);
  net::PacketFaultConfig f;
  f.schedule.seed = 7000 + index;
  f.schedule.crash_mttf_s = 400.0;
  f.schedule.crash_mttr_s = 60.0;
  f.schedule.corruption_rate = 0.05;
  f.energy = fault::EnergyCouplingConfig{};
  f.energy->harvest_avg_watt = 40e-6;
  f.energy->baseline_watt = 45e-6;
  f.energy->initial_soc = 0.05;
  cfg.faults = f;
  const auto r = net::simulate_packets(cfg);
  fault::ReliabilitySample s;
  s.delivered_fraction = r.delivered_fraction();
  s.generated = r.generated;
  s.delivered = r.delivered;
  s.retries = r.retries;
  return s;
}

std::uint64_t study_timeline_digest(unsigned threads) {
  obs::context().timeline.clear();
  obs::context().tracer.clear();
  obs::set_enabled(true);
  exec::ExecConfig ec;
  ec.threads = threads;
  const auto res =
      fault::run_availability_study(6, 0xA5A5, tiny_faulty_replication, ec);
  obs::set_enabled(false);
  const std::uint64_t digest = obs::context().timeline.digest();
  const std::size_t samples = obs::context().timeline.sample_count();
  obs::context().timeline.clear();
  obs::context().tracer.clear();
  EXPECT_GT(res.replications.size(), 0u);
  EXPECT_GT(samples, 0u);  // the probes really did record
  return digest;
}

}  // namespace

TEST(TimelineDeterminism, StudyTimelineBitIdenticalAtPools128) {
  const std::uint64_t d1 = study_timeline_digest(1);
  const std::uint64_t d2 = study_timeline_digest(2);
  const std::uint64_t d8 = study_timeline_digest(8);
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(d1, d8);
}

#endif  // AMBISIM_OBS_COMPILED
