// Per-thread observability shards: Accumulator/Histogram/registry/tracer
// merges and the thread-local context binding.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "ambisim/obs/obs.hpp"
#include "ambisim/sim/statistics.hpp"

namespace {

using namespace ambisim;

TEST(AccumulatorMergeTest, MatchesSingleStreamExactlyOnCountSumExtrema) {
  sim::Accumulator whole, left, right;
  for (int i = 0; i < 100; ++i) {
    const double x = 0.37 * i - 5.0;
    whole.add(x);
    (i < 42 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
}

TEST(AccumulatorMergeTest, MergingEmptySidesIsIdentity) {
  sim::Accumulator a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);  // no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), 2.0);
  sim::Accumulator b;
  b.merge(a);  // adopt
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.min(), 1.0);
  EXPECT_EQ(b.max(), 3.0);
}

TEST(HistogramMergeTest, BucketCountsAdd) {
  obs::Histogram a({1.0, 2.0, 4.0});
  obs::Histogram b({1.0, 2.0, 4.0});
  a.observe(0.5);
  a.observe(1.5);
  b.observe(1.5);
  b.observe(100.0);
  a.merge_from(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.bucket(0), 1u);
  EXPECT_EQ(a.bucket(1), 2u);
  EXPECT_EQ(a.bucket(2), 0u);
  EXPECT_EQ(a.bucket(3), 1u);  // overflow
  EXPECT_EQ(a.moments().max(), 100.0);
}

TEST(HistogramMergeTest, BoundsMismatchThrows) {
  obs::Histogram a({1.0, 2.0});
  obs::Histogram b({1.0, 3.0});
  EXPECT_THROW(a.merge_from(b), std::invalid_argument);
}

TEST(RegistryMergeTest, CountersGaugesHistogramsFold) {
  obs::MetricsRegistry dst, src;
  dst.counter("shared").inc(3);
  src.counter("shared").inc(4);
  src.counter("only_src").inc(7);
  dst.gauge("g").set(1.5);
  src.gauge("g").set(2.5);
  src.histogram("h", {1.0, 10.0}).observe(5.0);
  dst.merge_from(src);
  EXPECT_EQ(dst.find_counter("shared")->value(), 7u);
  EXPECT_EQ(dst.find_counter("only_src")->value(), 7u);
  EXPECT_DOUBLE_EQ(dst.find_gauge("g")->value(), 4.0);  // additive merge
  const obs::Histogram* h = dst.find_histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1u);
  // Created with the source's bounds, not the defaults.
  EXPECT_EQ(h->bounds(), (std::vector<double>{1.0, 10.0}));
}

TEST(TracerMergeTest, EventsAppendInShardOrder) {
  obs::Tracer a(16), b(16);
  a.instant("a0", "t", 1.0);
  b.instant("b0", "t", 2.0);
  b.instant("b1", "t", 3.0);
  a.merge_from(b);
  const auto events = a.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[0].name, "a0");
  EXPECT_STREQ(events[1].name, "b0");
  EXPECT_STREQ(events[2].name, "b1");
}

TEST(ShardSetTest, MergeIntoFoldsEveryShardAndClearsThem) {
  obs::ShardSet shards(3, /*tracer_capacity=*/32);
  for (std::size_t s = 0; s < shards.size(); ++s) {
    shards.shard(s).metrics.counter("hits").inc(s + 1);
    shards.shard(s).tracer.instant("ev", "t", static_cast<double>(s));
  }
  obs::Context dst;
  shards.merge_into(dst);
  EXPECT_EQ(dst.metrics.find_counter("hits")->value(), 1u + 2u + 3u);
  EXPECT_EQ(dst.tracer.size(), 3u);
  // Shards are drained by the merge.
  EXPECT_TRUE(shards.shard(0).metrics.empty());
  EXPECT_TRUE(shards.shard(0).tracer.empty());
}

TEST(ShardSetTest, ZeroShardsRejected) {
  EXPECT_THROW(obs::ShardSet(0), std::invalid_argument);
}

TEST(ContextBindingTest, RoutesContextToTheBoundShardAndRestores) {
  obs::Context shard;
  obs::Context& global = obs::context();
  {
    obs::ContextBinding bind(&shard);
    EXPECT_EQ(&obs::context(), &shard);
    {
      obs::ContextBinding inner(nullptr);  // no-op binding
      EXPECT_EQ(&obs::context(), &shard);
    }
    EXPECT_EQ(&obs::context(), &shard);
  }
  EXPECT_EQ(&obs::context(), &global);
}

}  // namespace
