#include "ambisim/obs/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

using ambisim::obs::Phase;
using ambisim::obs::TraceEvent;
using ambisim::obs::Tracer;

namespace {

std::size_t count_occurrences(const std::string& hay,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size()))
    ++n;
  return n;
}

/// Split a CSV dump into non-empty lines.
std::vector<std::string> lines_of(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  for (std::string line; std::getline(is, line);)
    if (!line.empty()) out.push_back(line);
  return out;
}

}  // namespace

TEST(Tracer, RecordsTypedEventsInOrder) {
  Tracer t(16);
  t.instant("a", "kernel", 1.0, 7);
  t.complete("b", "net", 2.0, 3.5, 9);
  t.counter("c", "energy", 4.0, 42.0);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t.recorded(), 3u);
  EXPECT_EQ(t.dropped(), 0u);

  const auto evs = t.events();
  EXPECT_STREQ(evs[0].name, "a");
  EXPECT_EQ(evs[0].phase, Phase::Instant);
  EXPECT_EQ(evs[0].tid, 7u);
  EXPECT_STREQ(evs[1].category, "net");
  EXPECT_EQ(evs[1].phase, Phase::Complete);
  EXPECT_DOUBLE_EQ(evs[1].dur_us, 3.5);
  EXPECT_EQ(evs[2].phase, Phase::Counter);
  EXPECT_DOUBLE_EQ(evs[2].value, 42.0);
}

TEST(Tracer, RingWrapsAroundKeepingNewestEvents) {
  Tracer t(4);
  for (int i = 0; i < 10; ++i)
    t.instant("e", "kernel", static_cast<double>(i), 0);
  EXPECT_EQ(t.capacity(), 4u);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.recorded(), 10u);
  EXPECT_EQ(t.dropped(), 6u);
  const auto evs = t.events();
  ASSERT_EQ(evs.size(), 4u);
  // Oldest surviving first: timestamps 6, 7, 8, 9.
  for (int i = 0; i < 4; ++i)
    EXPECT_DOUBLE_EQ(evs[static_cast<std::size_t>(i)].ts_us, 6.0 + i);
}

TEST(Tracer, WrapExactlyAtCapacityBoundary) {
  Tracer t(3);
  for (int i = 0; i < 3; ++i)
    t.instant("e", "k", static_cast<double>(i), 0);
  EXPECT_EQ(t.dropped(), 0u);
  EXPECT_DOUBLE_EQ(t.events().front().ts_us, 0.0);
  t.instant("e", "k", 3.0, 0);  // first overwrite
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.dropped(), 1u);
  EXPECT_DOUBLE_EQ(t.events().front().ts_us, 1.0);
  EXPECT_DOUBLE_EQ(t.events().back().ts_us, 3.0);
}

TEST(Tracer, ClearEmptiesTheRing) {
  Tracer t(4);
  t.instant("a", "k", 1.0, 0);
  t.clear();
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.recorded(), 0u);
  t.instant("b", "k", 2.0, 0);
  EXPECT_STREQ(t.events().front().name, "b");
}

TEST(Tracer, ZeroCapacityIsRejected) {
  EXPECT_THROW(Tracer(0), std::invalid_argument);
}

TEST(Tracer, ChromeJsonHasOneObjectPerEventWithRequiredFields) {
  Tracer t(8);
  t.instant("sched", "kernel", 1.5, 2);
  t.complete("hop", "net", 10.0, 250.0, 3);
  t.counter("soc", "energy", 20.0, 0.75);

  std::ostringstream os;
  t.write_chrome_json(os, /*pid=*/5);
  const std::string json = os.str();

  // A JSON array with exactly one object per event.
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(count_occurrences(json, "\"ph\":"), 3u);
  // Required Chrome trace_event fields on every object.
  EXPECT_EQ(count_occurrences(json, "\"name\":"), 3u);
  EXPECT_EQ(count_occurrences(json, "\"ts\":"), 3u);
  EXPECT_EQ(count_occurrences(json, "\"pid\":5"), 3u);
  EXPECT_EQ(count_occurrences(json, "\"tid\":"), 3u);
  // Phase-specific payloads.
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":250"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"value\":0.75}"), std::string::npos);
  // Balanced brackets/braces (cheap well-formedness check).
  EXPECT_EQ(count_occurrences(json, "{"), count_occurrences(json, "}"));
  EXPECT_EQ(json.find('['), 0u);
  EXPECT_NE(json.rfind(']'), std::string::npos);
}

TEST(Tracer, ChromeJsonEscapesQuotesAndBackslashes) {
  Tracer t(2);
  t.instant("quo\"te", "back\\slash", 0.0, 0);
  std::ostringstream os;
  t.write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("quo\\\"te"), std::string::npos);
  EXPECT_NE(json.find("back\\\\slash"), std::string::npos);
}

TEST(Tracer, CsvRoundTripPreservesEveryField) {
  Tracer t(8);
  t.instant("sched", "kernel", 1.5, 2);
  t.complete("hop", "net", 10.0, 250.0, 3);
  t.counter("soc", "energy", 20.0, 0.75);

  std::ostringstream os;
  t.write_csv(os);
  const auto rows = lines_of(os.str());
  ASSERT_EQ(rows.size(), 4u);  // header + 3 events
  EXPECT_EQ(rows[0], "name,category,phase,ts_us,dur_us,tid,value");
  EXPECT_EQ(rows[1], "sched,kernel,i,1.5,0,2,0");
  EXPECT_EQ(rows[2], "hop,net,X,10,250,3,0");
  EXPECT_EQ(rows[3], "soc,energy,C,20,0,0,0.75");

  // Round trip: parse the CSV back and compare against events().
  const auto evs = t.events();
  for (std::size_t i = 0; i < evs.size(); ++i) {
    std::istringstream row(rows[i + 1]);
    std::string name, cat, phase, ts, dur, tid, value;
    std::getline(row, name, ',');
    std::getline(row, cat, ',');
    std::getline(row, phase, ',');
    std::getline(row, ts, ',');
    std::getline(row, dur, ',');
    std::getline(row, tid, ',');
    std::getline(row, value, ',');
    EXPECT_EQ(name, evs[i].name);
    EXPECT_EQ(cat, evs[i].category);
    ASSERT_EQ(phase.size(), 1u);
    EXPECT_EQ(phase[0], static_cast<char>(evs[i].phase));
    EXPECT_DOUBLE_EQ(std::stod(ts), evs[i].ts_us);
    EXPECT_DOUBLE_EQ(std::stod(dur), evs[i].dur_us);
    EXPECT_EQ(static_cast<std::uint32_t>(std::stoul(tid)), evs[i].tid);
    EXPECT_DOUBLE_EQ(std::stod(value), evs[i].value);
  }
}
