#include "ambisim/obs/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

using ambisim::obs::Phase;
using ambisim::obs::TraceEvent;
using ambisim::obs::Tracer;

namespace {

std::size_t count_occurrences(const std::string& hay,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size()))
    ++n;
  return n;
}

/// Split a CSV dump into non-empty lines.
std::vector<std::string> lines_of(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  for (std::string line; std::getline(is, line);)
    if (!line.empty()) out.push_back(line);
  return out;
}

}  // namespace

TEST(Tracer, RecordsTypedEventsInOrder) {
  Tracer t(16);
  t.instant("a", "kernel", 1.0, 7);
  t.complete("b", "net", 2.0, 3.5, 9);
  t.counter("c", "energy", 4.0, 42.0);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t.recorded(), 3u);
  EXPECT_EQ(t.dropped(), 0u);

  const auto evs = t.events();
  EXPECT_STREQ(evs[0].name, "a");
  EXPECT_EQ(evs[0].phase, Phase::Instant);
  EXPECT_EQ(evs[0].tid, 7u);
  EXPECT_STREQ(evs[1].category, "net");
  EXPECT_EQ(evs[1].phase, Phase::Complete);
  EXPECT_DOUBLE_EQ(evs[1].dur_us, 3.5);
  EXPECT_EQ(evs[2].phase, Phase::Counter);
  EXPECT_DOUBLE_EQ(evs[2].value, 42.0);
}

TEST(Tracer, RingWrapsAroundKeepingNewestEvents) {
  Tracer t(4);
  for (int i = 0; i < 10; ++i)
    t.instant("e", "kernel", static_cast<double>(i), 0);
  EXPECT_EQ(t.capacity(), 4u);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.recorded(), 10u);
  EXPECT_EQ(t.dropped(), 6u);
  const auto evs = t.events();
  ASSERT_EQ(evs.size(), 4u);
  // Oldest surviving first: timestamps 6, 7, 8, 9.
  for (int i = 0; i < 4; ++i)
    EXPECT_DOUBLE_EQ(evs[static_cast<std::size_t>(i)].ts_us, 6.0 + i);
}

TEST(Tracer, WrapExactlyAtCapacityBoundary) {
  Tracer t(3);
  for (int i = 0; i < 3; ++i)
    t.instant("e", "k", static_cast<double>(i), 0);
  EXPECT_EQ(t.dropped(), 0u);
  EXPECT_DOUBLE_EQ(t.events().front().ts_us, 0.0);
  t.instant("e", "k", 3.0, 0);  // first overwrite
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.dropped(), 1u);
  EXPECT_DOUBLE_EQ(t.events().front().ts_us, 1.0);
  EXPECT_DOUBLE_EQ(t.events().back().ts_us, 3.0);
}

TEST(Tracer, ClearEmptiesTheRing) {
  Tracer t(4);
  t.instant("a", "k", 1.0, 0);
  t.clear();
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.recorded(), 0u);
  t.instant("b", "k", 2.0, 0);
  EXPECT_STREQ(t.events().front().name, "b");
}

TEST(Tracer, ZeroCapacityIsRejected) {
  EXPECT_THROW(Tracer(0), std::invalid_argument);
}

TEST(Tracer, ChromeJsonHasOneObjectPerEventWithRequiredFields) {
  Tracer t(8);
  t.instant("sched", "kernel", 1.5, 2);
  t.complete("hop", "net", 10.0, 250.0, 3);
  t.counter("soc", "energy", 20.0, 0.75);

  std::ostringstream os;
  t.write_chrome_json(os, /*pid=*/5);
  const std::string json = os.str();

  // A JSON array with exactly one object per event.
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(count_occurrences(json, "\"ph\":"), 3u);
  // Required Chrome trace_event fields on every object.
  EXPECT_EQ(count_occurrences(json, "\"name\":"), 3u);
  EXPECT_EQ(count_occurrences(json, "\"ts\":"), 3u);
  EXPECT_EQ(count_occurrences(json, "\"pid\":5"), 3u);
  EXPECT_EQ(count_occurrences(json, "\"tid\":"), 3u);
  // Phase-specific payloads.
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":250"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"value\":0.75}"), std::string::npos);
  // Balanced brackets/braces (cheap well-formedness check).
  EXPECT_EQ(count_occurrences(json, "{"), count_occurrences(json, "}"));
  EXPECT_EQ(json.find('['), 0u);
  EXPECT_NE(json.rfind(']'), std::string::npos);
}

TEST(Tracer, ChromeJsonEscapesQuotesAndBackslashes) {
  Tracer t(2);
  t.instant("quo\"te", "back\\slash", 0.0, 0);
  std::ostringstream os;
  t.write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("quo\\\"te"), std::string::npos);
  EXPECT_NE(json.find("back\\\\slash"), std::string::npos);
}

TEST(Tracer, CsvRoundTripPreservesEveryField) {
  Tracer t(8);
  t.instant("sched", "kernel", 1.5, 2);
  t.complete("hop", "net", 10.0, 250.0, 3);
  t.counter("soc", "energy", 20.0, 0.75);
  t.flow("pkt", "net", Phase::FlowStep, 30.0, 4, 99, 7.0);

  std::ostringstream os;
  t.write_csv(os);
  const auto rows = lines_of(os.str());
  ASSERT_EQ(rows.size(), 5u);  // header + 4 events
  EXPECT_EQ(rows[0], "name,category,phase,ts_us,dur_us,tid,value,flow");
  EXPECT_EQ(rows[1], "sched,kernel,i,1.5,0,2,0,0");
  EXPECT_EQ(rows[2], "hop,net,X,10,250,3,0,0");
  EXPECT_EQ(rows[3], "soc,energy,C,20,0,0,0.75,0");
  EXPECT_EQ(rows[4], "pkt,net,t,30,0,4,7,99");

  // Round trip: parse the CSV back and compare against events().
  const auto evs = t.events();
  for (std::size_t i = 0; i < evs.size(); ++i) {
    std::istringstream row(rows[i + 1]);
    std::string name, cat, phase, ts, dur, tid, value, flow;
    std::getline(row, name, ',');
    std::getline(row, cat, ',');
    std::getline(row, phase, ',');
    std::getline(row, ts, ',');
    std::getline(row, dur, ',');
    std::getline(row, tid, ',');
    std::getline(row, value, ',');
    std::getline(row, flow, ',');
    EXPECT_EQ(name, evs[i].name);
    EXPECT_EQ(cat, evs[i].category);
    ASSERT_EQ(phase.size(), 1u);
    EXPECT_EQ(phase[0], static_cast<char>(evs[i].phase));
    EXPECT_DOUBLE_EQ(std::stod(ts), evs[i].ts_us);
    EXPECT_DOUBLE_EQ(std::stod(dur), evs[i].dur_us);
    EXPECT_EQ(static_cast<std::uint32_t>(std::stoul(tid)), evs[i].tid);
    EXPECT_DOUBLE_EQ(std::stod(value), evs[i].value);
    EXPECT_EQ(std::stoull(flow), evs[i].flow);
  }
}

TEST(Tracer, FlowEventsLinkByIdInChromeJson) {
  Tracer t(8);
  t.flow("packet", "net", Phase::FlowStart, 1.0, 5, 42, 5.0);
  t.flow("hop", "net", Phase::FlowStep, 2.0, 5, 42, 7.0);
  t.flow("packet.delivered", "net", Phase::FlowEnd, 3.0, 7, 42, 2.0);

  std::ostringstream os;
  t.write_chrome_json(os);
  const std::string json = os.str();
  // Every flow phase carries the linking id and an enclosing binding
  // point, which is what makes the chain render as arrows in Perfetto.
  EXPECT_EQ(count_occurrences(json, "\"id\":42"), 3u);
  EXPECT_EQ(count_occurrences(json, "\"bp\":\"e\""), 3u);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
}

TEST(Tracer, JsonlEmitsOneObjectPerLineWithFlowIds) {
  Tracer t(8);
  t.flow("packet", "net", Phase::FlowStart, 1.0, 3, 9, 3.0);
  t.instant("sched", "kernel", 2.0, 0);
  t.flow("packet.delivered", "net", Phase::FlowEnd, 4.0, 3, 9, 1.0);

  std::ostringstream os;
  t.write_jsonl(os);
  const auto rows = lines_of(os.str());
  ASSERT_EQ(rows.size(), 3u);
  for (const std::string& row : rows) {
    EXPECT_EQ(row.front(), '{');
    EXPECT_EQ(row.back(), '}');
    EXPECT_NE(row.find("\"type\":\"event\""), std::string::npos);
  }
  EXPECT_NE(rows[0].find("\"flow\":9"), std::string::npos);
  EXPECT_NE(rows[1].find("\"flow\":0"), std::string::npos);
  EXPECT_NE(rows[2].find("\"ph\":\"f\""), std::string::npos);
}

TEST(Tracer, MergeFromAppendsSurvivorsOldestFirstAfterWraparound) {
  // The source ring wrapped: only its newest 4 events survive, and
  // merge_from must append them oldest-surviving-first.
  Tracer src(4);
  for (int i = 0; i < 10; ++i)
    src.instant("s", "net", static_cast<double>(i), 0);
  ASSERT_EQ(src.dropped(), 6u);

  Tracer dst(16);
  dst.instant("d", "net", 100.0, 0);
  dst.merge_from(src);
  const auto evs = dst.events();
  ASSERT_EQ(evs.size(), 5u);
  EXPECT_STREQ(evs[0].name, "d");
  for (std::size_t i = 1; i < evs.size(); ++i)
    EXPECT_DOUBLE_EQ(evs[i].ts_us, static_cast<double>(5 + i));  // 6..9
}

TEST(Tracer, MergeIntoSmallerRingWrapsAndCountsDropped) {
  Tracer src(8);
  for (int i = 0; i < 6; ++i)
    src.instant("s", "net", static_cast<double>(i), 0);

  Tracer dst(4);
  dst.merge_from(src);
  // The destination ring keeps the newest 4 of the 6 merged events and
  // accounts for the other 2 as dropped.
  EXPECT_EQ(dst.size(), 4u);
  EXPECT_EQ(dst.recorded(), 6u);
  EXPECT_EQ(dst.dropped(), 2u);
  const auto evs = dst.events();
  for (std::size_t i = 0; i < evs.size(); ++i)
    EXPECT_DOUBLE_EQ(evs[i].ts_us, static_cast<double>(2 + i));  // 2..5
}

TEST(Tracer, MergeOrderIsShardOrderNotTimestampOrder) {
  // merge_from is an append, not a sort: shard order decides placement,
  // every event keeps its own timestamp (the documented contract).
  Tracer a(8);
  a.instant("a", "net", 50.0, 0);
  Tracer b(8);
  b.instant("b", "net", 1.0, 0);

  Tracer dst(8);
  dst.merge_from(a);
  dst.merge_from(b);
  const auto evs = dst.events();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_STREQ(evs[0].name, "a");
  EXPECT_STREQ(evs[1].name, "b");
  EXPECT_GT(evs[0].ts_us, evs[1].ts_us);
}
