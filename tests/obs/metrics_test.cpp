#include "ambisim/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

using ambisim::obs::Counter;
using ambisim::obs::Gauge;
using ambisim::obs::Histogram;
using ambisim::obs::MetricsRegistry;

TEST(Counter, IncrementsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddReset) {
  Gauge g;
  g.set(2.5);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, BucketsValuesByUpperBound) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // bucket 0 (<= 1)
  h.observe(1.0);    // bucket 0 (bound is inclusive)
  h.observe(5.0);    // bucket 1
  h.observe(50.0);   // bucket 2
  h.observe(500.0);  // overflow
  ASSERT_EQ(h.bucket_count(), 4u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_TRUE(std::isinf(h.upper_bound(3)));
}

TEST(Histogram, MomentsMatchWelfordAccumulator) {
  Histogram h({1.0, 2.0, 4.0});
  ambisim::sim::Accumulator acc;
  for (double x : {0.3, 0.7, 1.5, 3.0, 8.0, 2.2}) {
    h.observe(x);
    acc.add(x);
  }
  EXPECT_DOUBLE_EQ(h.moments().mean(), acc.mean());
  EXPECT_DOUBLE_EQ(h.moments().stddev(), acc.stddev());
  EXPECT_DOUBLE_EQ(h.moments().min(), acc.min());
  EXPECT_DOUBLE_EQ(h.moments().max(), acc.max());
}

TEST(Histogram, QuantileInterpolatesAndStaysInRange) {
  Histogram h({1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 100; ++i) h.observe(1.0 + 3.0 * i / 99.0);  // [1, 4]
  const double p50 = h.quantile(0.5);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 4.0);
  EXPECT_NEAR(p50, 2.5, 1.0);  // bucket-grade accuracy
  EXPECT_GE(h.quantile(0.0), h.moments().min());
  EXPECT_LE(h.quantile(1.0), h.moments().max());
  EXPECT_LE(h.quantile(0.1), h.quantile(0.9));
}

TEST(Histogram, RejectsBadBoundsAndQueries) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  Histogram h({1.0});
  EXPECT_THROW((void)h.quantile(0.5), std::logic_error);  // empty
  h.observe(0.5);
  EXPECT_THROW((void)h.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW((void)h.quantile(1.1), std::invalid_argument);
}

TEST(Histogram, ExponentialBoundsSpanTheRequestedDecades) {
  const auto b = Histogram::exponential_bounds(1e-3, 1.0, 1);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b.front(), 1e-3);
  EXPECT_NEAR(b.back(), 1.0, 1e-9);
  EXPECT_TRUE(std::is_sorted(b.begin(), b.end()));
}

TEST(MetricsRegistry, FindOrCreateIsIdempotent) {
  MetricsRegistry reg;
  Counter& a = reg.counter("net.hops");
  a.inc(3);
  Counter& b = reg.counter("net.hops");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3u);
  // Same name in a different kind is a distinct instrument.
  reg.gauge("net.hops").set(7.0);
  EXPECT_EQ(reg.counter("net.hops").value(), 3u);
  EXPECT_DOUBLE_EQ(reg.gauge("net.hops").value(), 7.0);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricsRegistry, FindDoesNotCreate) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.find_counter("missing"), nullptr);
  EXPECT_EQ(reg.find_gauge("missing"), nullptr);
  EXPECT_EQ(reg.find_histogram("missing"), nullptr);
  EXPECT_TRUE(reg.empty());
  reg.counter("present").inc();
  ASSERT_NE(reg.find_counter("present"), nullptr);
  EXPECT_EQ(reg.find_counter("present")->value(), 1u);
}

TEST(MetricsRegistry, HistogramBoundsOnlyApplyOnCreation) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat", {1.0, 2.0});
  EXPECT_EQ(h.bucket_count(), 3u);
  // Second request with different bounds returns the existing histogram.
  Histogram& h2 = reg.histogram("lat", {5.0});
  EXPECT_EQ(&h, &h2);
  EXPECT_EQ(h2.bucket_count(), 3u);
  // Default bounds kick in when none are given.
  Histogram& d = reg.histogram("wall");
  EXPECT_EQ(d.bucket_count(), Histogram::default_bounds().size() + 1);
}

TEST(MetricsRegistry, ResetValuesKeepsEntriesClearDropsThem) {
  MetricsRegistry reg;
  Counter& c = reg.counter("a");
  c.inc(5);
  reg.gauge("b").set(2.0);
  reg.histogram("c", {1.0}).observe(0.5);
  reg.reset_values();
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_EQ(c.value(), 0u);  // cached reference survives reset_values
  EXPECT_DOUBLE_EQ(reg.gauge("b").value(), 0.0);
  EXPECT_EQ(reg.histogram("c").count(), 0u);
  reg.clear();
  EXPECT_TRUE(reg.empty());
}

TEST(MetricsRegistry, CsvDumpIsDeterministicAndComplete) {
  MetricsRegistry reg;
  reg.counter("z.count").inc(9);
  reg.gauge("a.gauge").set(1.5);
  auto& h = reg.histogram("m.hist", {1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);

  std::ostringstream os;
  reg.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("metric,kind,field,value"), std::string::npos);
  EXPECT_NE(csv.find("z.count,counter,count,9"), std::string::npos);
  EXPECT_NE(csv.find("a.gauge,gauge,value,1.5"), std::string::npos);
  EXPECT_NE(csv.find("m.hist,histogram,count,2"), std::string::npos);
  EXPECT_NE(csv.find("m.hist,histogram,mean,2.75"), std::string::npos);
  // Rows are sorted by metric name: a.gauge before m.hist before z.count.
  EXPECT_LT(csv.find("a.gauge"), csv.find("m.hist"));
  EXPECT_LT(csv.find("m.hist"), csv.find("z.count"));
}
