// Probes, the global context, and the kernel/ledger instrumentation wired
// through them.  These tests mutate process-global obs state, so every test
// restores a clean disabled state via the fixture.
#include "ambisim/obs/probe.hpp"

#include <gtest/gtest.h>

#include "ambisim/energy/ledger.hpp"
#include "ambisim/sim/simulator.hpp"

namespace obs = ambisim::obs;
using namespace ambisim::units::literals;

class ObsProbeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(false);
    obs::context().metrics.clear();
    obs::context().tracer.clear();
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::context().metrics.clear();
    obs::context().tracer.clear();
  }
};

TEST_F(ObsProbeTest, MacrosAreInertWhenDisabled) {
  AMBISIM_OBS_COUNT("t.count");
  AMBISIM_OBS_OBSERVE("t.hist", 1.0);
  AMBISIM_OBS_INSTANT("t.ev", "test", 0.0, 0);
  EXPECT_TRUE(obs::context().metrics.empty());
  EXPECT_TRUE(obs::context().tracer.empty());
}

#if AMBISIM_OBS_COMPILED

TEST_F(ObsProbeTest, MacrosRecordWhenEnabled) {
  obs::set_enabled(true);
  AMBISIM_OBS_COUNT("t.count");
  AMBISIM_OBS_COUNT_N("t.count", 2);
  AMBISIM_OBS_GAUGE_SET("t.gauge", 1.25);
  AMBISIM_OBS_OBSERVE("t.hist", 0.5);
  AMBISIM_OBS_INSTANT("t.ev", "test", 3.0, 1);
  AMBISIM_OBS_COMPLETE("t.span", "test", 4.0, 2.0, 1);
  AMBISIM_OBS_COUNTER_EVENT("t.series", "test", 5.0, 9.0);

  auto& ctx = obs::context();
  EXPECT_EQ(ctx.metrics.counter("t.count").value(), 3u);
  EXPECT_DOUBLE_EQ(ctx.metrics.gauge("t.gauge").value(), 1.25);
  EXPECT_EQ(ctx.metrics.histogram("t.hist").count(), 1u);
  ASSERT_EQ(ctx.tracer.size(), 3u);
  EXPECT_EQ(ctx.tracer.events()[1].phase, obs::Phase::Complete);
}

TEST_F(ObsProbeTest, ScopedTimerObservesWallTimeIntoHistogram) {
  obs::set_enabled(true);
  {
    obs::ScopedTimer t("t.wall_s");
    EXPECT_TRUE(t.armed());
    EXPECT_GE(t.elapsed_seconds(), 0.0);
  }
  const auto* h = obs::context().metrics.find_histogram("t.wall_s");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1u);
  EXPECT_GE(h->moments().min(), 0.0);
}

TEST_F(ObsProbeTest, ScopedTimerIsInertWhenDisabled) {
  {
    obs::ScopedTimer t("t.wall_s");
    EXPECT_FALSE(t.armed());
  }
  EXPECT_EQ(obs::context().metrics.find_histogram("t.wall_s"), nullptr);
}

TEST_F(ObsProbeTest, ProbeScopeEmitsCompleteSpanAtSimTimestamp) {
  obs::set_enabled(true);
  { obs::ProbeScope span("t.work", "test", 1234.0, 6); }
  ASSERT_EQ(obs::context().tracer.size(), 1u);
  const auto ev = obs::context().tracer.events().front();
  EXPECT_STREQ(ev.name, "t.work");
  EXPECT_EQ(ev.phase, obs::Phase::Complete);
  EXPECT_DOUBLE_EQ(ev.ts_us, 1234.0);
  EXPECT_EQ(ev.tid, 6u);
  EXPECT_GE(ev.dur_us, 0.0);  // wall-clock duration
}

TEST_F(ObsProbeTest, KernelInstrumentationCountsScheduleFireCancel) {
  obs::set_enabled(true);
  ambisim::sim::Simulator s;
  s.schedule_at(1.0_s, [] {});
  auto h = s.schedule_at(2.0_s, [] {});
  h.cancel();
  h.cancel();  // double-cancel must not double-count
  s.run();

  auto& m = obs::context().metrics;
  EXPECT_EQ(m.counter("sim.scheduled").value(), 2u);
  EXPECT_EQ(m.counter("sim.fired").value(), 1u);
  EXPECT_EQ(m.counter("sim.cancelled").value(), 1u);
  EXPECT_EQ(m.histogram("sim.callback_s").count(), 1u);

  // The kernel contributed schedule instants and an event span.
  bool saw_kernel_span = false;
  for (const auto& ev : obs::context().tracer.events()) {
    if (std::string(ev.category) == "kernel" &&
        ev.phase == obs::Phase::Complete)
      saw_kernel_span = true;
  }
  EXPECT_TRUE(saw_kernel_span);
}

TEST_F(ObsProbeTest, LedgerInstrumentationCountsCharges) {
  obs::set_enabled(true);
  ambisim::energy::EnergyLedger ledger;
  ledger.charge("radio", ambisim::units::Energy(1e-3));
  ledger.charge("cpu", ambisim::units::Energy(2e-3));
  auto& m = obs::context().metrics;
  EXPECT_EQ(m.counter("energy.charges").value(), 2u);
  EXPECT_EQ(m.histogram("energy.charge_J").count(), 2u);
  EXPECT_NEAR(m.histogram("energy.charge_J").moments().sum(), 3e-3, 1e-12);
}

TEST_F(ObsProbeTest, ResetZeroesMetricsAndDropsTrace) {
  obs::set_enabled(true);
  AMBISIM_OBS_COUNT("t.count");
  AMBISIM_OBS_INSTANT("t.ev", "test", 0.0, 0);
  obs::reset();
  EXPECT_TRUE(obs::enabled());  // reset does not disarm
  EXPECT_EQ(obs::context().metrics.counter("t.count").value(), 0u);
  EXPECT_TRUE(obs::context().tracer.empty());
}

TEST_F(ObsProbeTest, DisableStopsRecordingWithoutClearing) {
  obs::set_enabled(true);
  AMBISIM_OBS_COUNT("t.count");
  obs::set_enabled(false);
  AMBISIM_OBS_COUNT("t.count");
  EXPECT_EQ(obs::context().metrics.counter("t.count").value(), 1u);
}

#endif  // AMBISIM_OBS_COMPILED
