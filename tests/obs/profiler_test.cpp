// obs::Profiler unit contract: phase accumulation, window records and the
// record cap, imbalance arithmetic, worker import, JSON export (validated
// by re-parsing with scen::json), trace export, and the thread-local
// binding.  Everything here is wall-clock bookkeeping — no simulation.
#include "ambisim/obs/profiler.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "ambisim/obs/manifest.hpp"
#include "ambisim/obs/trace.hpp"
#include "ambisim/scen/json.hpp"

namespace {

using ambisim::obs::Profiler;
using ambisim::obs::ProfilerBinding;
using ambisim::obs::Tracer;
namespace js = ambisim::scen::json;

TEST(ProfilerTest, StartsEmpty) {
  Profiler prof;
  EXPECT_TRUE(prof.empty());
  EXPECT_EQ(prof.windows_total(), 0);
  EXPECT_EQ(prof.windows_dropped(), 0);
  EXPECT_DOUBLE_EQ(prof.advance_wall_s(), 0.0);
  EXPECT_DOUBLE_EQ(prof.barrier_wall_s(), 0.0);
  EXPECT_DOUBLE_EQ(prof.aggregate_imbalance(), 1.0);
}

TEST(ProfilerTest, PhasesAccumulateByName) {
  Profiler prof;
  prof.add_phase("build", 0.0, 1.5);
  prof.add_phase("run", 1.5, 2.0);
  prof.add_phase("build", 3.5, 0.5);
  ASSERT_EQ(prof.phases().size(), 2u);
  const Profiler::Phase* build = prof.find_phase("build");
  ASSERT_NE(build, nullptr);
  EXPECT_EQ(build->count, 2u);
  EXPECT_DOUBLE_EQ(build->wall_s, 2.0);
  EXPECT_DOUBLE_EQ(build->first_start_s, 0.0);  // first scope's start wins
  EXPECT_EQ(prof.find_phase("missing"), nullptr);
}

TEST(ProfilerTest, PhaseScopeRecordsElapsedTime) {
  Profiler prof;
  {
    Profiler::PhaseScope scope(&prof, "scoped");
  }
  const Profiler::Phase* p = prof.find_phase("scoped");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->count, 1u);
  EXPECT_GE(p->wall_s, 0.0);
}

TEST(ProfilerTest, NullProfilerScopesAreInert) {
  // Both the RAII scope and the timed() helper must be no-ops on nullptr.
  Profiler::PhaseScope scope(nullptr, "ignored");
  const int got = Profiler::timed(nullptr, "ignored", [] { return 41 + 1; });
  EXPECT_EQ(got, 42);
}

TEST(ProfilerTest, TimedReturnsTheCallableResultAndRecords) {
  Profiler prof;
  const std::string got =
      Profiler::timed(&prof, "compute", [] { return std::string("x"); });
  EXPECT_EQ(got, "x");
  ASSERT_NE(prof.find_phase("compute"), nullptr);
  EXPECT_EQ(prof.find_phase("compute")->count, 1u);
}

TEST(ProfilerTest, WindowRecordsImbalanceAsMaxOverMean) {
  Profiler prof;
  prof.begin_windows(2);
  prof.record_window(0.0, {3.0, 1.0}, 0.25, 5, 4);
  ASSERT_EQ(prof.windows().size(), 1u);
  const Profiler::Window& w = prof.windows().front();
  EXPECT_DOUBLE_EQ(w.advance_max_s, 3.0);
  EXPECT_DOUBLE_EQ(w.advance_mean_s, 2.0);
  EXPECT_DOUBLE_EQ(w.imbalance, 1.5);
  EXPECT_DOUBLE_EQ(w.barrier_wall_s, 0.25);
  EXPECT_EQ(w.gathered, 5);
  EXPECT_EQ(w.rescheduled, 4);
  // Aggregates track the same record.
  EXPECT_EQ(prof.windows_total(), 1);
  EXPECT_EQ(prof.boundary_gathered(), 5);
  EXPECT_EQ(prof.boundary_rescheduled(), 4);
  EXPECT_DOUBLE_EQ(prof.advance_wall_s(), 4.0);  // per-shard sum
  EXPECT_DOUBLE_EQ(prof.barrier_wall_s(), 0.25);
  EXPECT_DOUBLE_EQ(prof.aggregate_imbalance(), 1.5);
}

TEST(ProfilerTest, AggregateImbalanceIsTimeWeighted) {
  Profiler prof;
  prof.begin_windows(2);
  // A long imbalanced window must dominate a short balanced one:
  // sums are max 10+1 = 11, mean 5.5+1 = 6.5.
  prof.record_window(0.0, {10.0, 1.0}, 0.0, 0, 0);
  prof.record_window(1.0, {1.0, 1.0}, 0.0, 0, 0);
  EXPECT_NEAR(prof.aggregate_imbalance(), 11.0 / 6.5, 1e-12);
}

TEST(ProfilerTest, WindowCapKeepsAggregatesExact) {
  Profiler prof;
  prof.begin_windows(1, /*max_records=*/4);
  for (int i = 0; i < 10; ++i)
    prof.record_window(static_cast<double>(i), {1.0}, 0.5, 2, 1);
  EXPECT_EQ(prof.windows().size(), 4u);  // record cap bites...
  EXPECT_EQ(prof.windows_total(), 10);   // ...but the totals do not lie
  EXPECT_EQ(prof.windows_dropped(), 6);
  EXPECT_EQ(prof.boundary_gathered(), 20);
  EXPECT_EQ(prof.boundary_rescheduled(), 10);
  EXPECT_DOUBLE_EQ(prof.advance_wall_s(), 10.0);
  EXPECT_DOUBLE_EQ(prof.barrier_wall_s(), 5.0);
}

TEST(ProfilerTest, PerShardTotalsAccumulateAcrossWindows) {
  Profiler prof;
  prof.begin_windows(2);
  prof.record_window(0.0, {2.0, 1.0}, 0.0, 0, 0);
  prof.record_window(2.0, {1.0, 3.0}, 0.0, 0, 0);
  prof.set_shard_events(0, 100);
  prof.set_shard_events(1, 250);
  ASSERT_EQ(prof.shards().size(), 2u);
  EXPECT_DOUBLE_EQ(prof.shards()[0].advance_wall_s, 3.0);
  EXPECT_DOUBLE_EQ(prof.shards()[1].advance_wall_s, 4.0);
  EXPECT_EQ(prof.shards()[0].events, 100u);
  EXPECT_EQ(prof.shards()[1].events, 250u);
}

TEST(ProfilerTest, BeginWindowsResetsPriorRun) {
  Profiler prof;
  prof.begin_windows(2);
  prof.record_window(0.0, {1.0, 1.0}, 0.5, 3, 3);
  prof.begin_windows(4);
  EXPECT_EQ(prof.windows_total(), 0);
  EXPECT_TRUE(prof.windows().empty());
  EXPECT_EQ(prof.boundary_gathered(), 0);
  EXPECT_EQ(prof.shards().size(), 4u);
  EXPECT_DOUBLE_EQ(prof.advance_wall_s(), 0.0);
}

TEST(ProfilerTest, WorkerUtilizationIsRunOverLifetime) {
  Profiler::Worker w;
  w.run_s = 3.0;
  w.lifetime_s = 4.0;
  EXPECT_DOUBLE_EQ(w.utilization(), 0.75);
  EXPECT_DOUBLE_EQ(Profiler::Worker{}.utilization(), 0.0);  // no div by 0
}

TEST(ProfilerTest, ClearDropsEverything) {
  Profiler prof;
  prof.add_phase("p", 0.0, 1.0);
  prof.begin_windows(1);
  prof.record_window(0.0, {1.0}, 0.1, 1, 1);
  prof.set_workers({Profiler::Worker{0, 5, 0.1, 0.2, 0.3, 0.6}});
  prof.clear();
  EXPECT_TRUE(prof.empty());
  EXPECT_TRUE(prof.phases().empty());
  EXPECT_TRUE(prof.workers().empty());
  EXPECT_TRUE(prof.shards().empty());
  EXPECT_EQ(prof.windows_total(), 0);
}

TEST(ProfilerTest, WriteJsonRoundTripsThroughTheScenParser) {
  Profiler prof;
  prof.add_phase("net.event_loop", 0.0, 2.0);
  prof.begin_windows(2);
  prof.record_window(0.0, {2.0, 1.0}, 0.25, 5, 4);
  prof.set_shard_events(0, 10);
  prof.set_shard_events(1, 20);
  prof.set_workers({Profiler::Worker{0, 7, 0.1, 0.3, 0.2, 0.6}});

  std::ostringstream os;
  prof.write_json(os, 2);
  const js::Value root = js::parse(os.str());

  ASSERT_NE(root.find("phases"), nullptr);
  EXPECT_EQ(root.find("phases")->size(), 1u);
  EXPECT_EQ((*root.find("phases")->items().begin()).find("name")->as_string(),
            "net.event_loop");
  ASSERT_NE(root.find("workers"), nullptr);
  const js::Value& worker = root.find("workers")->items()[0];
  EXPECT_EQ(worker.find("tasks")->as_number(), 7.0);
  // JSON floats print at default stream precision: compare loosely.
  EXPECT_NEAR(worker.find("utilization")->as_number(), 0.5, 1e-4);
  ASSERT_NE(root.find("shards"), nullptr);
  EXPECT_EQ(root.find("shards")->size(), 2u);
  EXPECT_EQ(root.find("windows_total")->as_number(), 1.0);
  EXPECT_EQ(root.find("windows_recorded")->as_number(), 1.0);
  EXPECT_EQ(root.find("boundary_gathered")->as_number(), 5.0);
  EXPECT_EQ(root.find("boundary_rescheduled")->as_number(), 4.0);
  EXPECT_NEAR(root.find("imbalance")->as_number(), 4.0 / 3.0, 1e-4);
  ASSERT_NE(root.find("windows"), nullptr);
  EXPECT_EQ(root.find("windows")->size(), 1u);
  EXPECT_EQ(root.find("manifest"), nullptr);  // none passed
}

TEST(ProfilerTest, WriteJsonEmbedsTheManifestWhenGiven) {
  Profiler prof;
  prof.add_phase("p", 0.0, 1.0);
  auto manifest = ambisim::obs::RunManifest::collect();
  manifest.label = "profiler-test";
  manifest.seed = 7;

  std::ostringstream os;
  prof.write_json(os, 2, &manifest);
  const js::Value root = js::parse(os.str());
  ASSERT_NE(root.find("manifest"), nullptr);
  EXPECT_EQ(root.find("manifest")->find("label")->as_string(),
            "profiler-test");
  EXPECT_EQ(root.find("manifest")->find("seed")->as_number(), 7.0);
}

TEST(ProfilerTest, ExportTraceEmitsPhaseAndWindowSpans) {
  Profiler prof;
  prof.add_phase("a", 0.0, 1.0);
  prof.add_phase("b", 1.0, 0.5);
  prof.begin_windows(1);
  prof.record_window(0.0, {1.0}, 0.1, 0, 0);
  prof.record_window(1.1, {1.0}, 0.1, 0, 0);

  Tracer tracer;
  prof.export_trace(tracer);
  // 2 phases + 2 windows x (advance span + barrier span).
  EXPECT_EQ(tracer.size(), 2u + 2u * 2u);
  const auto events = tracer.events();
  int advance = 0, barrier = 0;
  for (const auto& e : events) {
    if (std::string(e.name) == "window.advance") ++advance;
    if (std::string(e.name) == "window.barrier") ++barrier;
  }
  EXPECT_EQ(advance, 2);
  EXPECT_EQ(barrier, 2);
}

#if AMBISIM_OBS_COMPILED
TEST(ProfilerTest, BindingResolvesAndRestores) {
  EXPECT_EQ(ambisim::obs::current_profiler(), nullptr);
  Profiler outer;
  {
    ProfilerBinding bind(&outer);
    EXPECT_EQ(ambisim::obs::current_profiler(), &outer);
    Profiler inner;
    {
      ProfilerBinding nested(&inner);
      EXPECT_EQ(ambisim::obs::current_profiler(), &inner);
    }
    EXPECT_EQ(ambisim::obs::current_profiler(), &outer);
    {
      ProfilerBinding noop(nullptr);  // null binding keeps the outer one
      EXPECT_EQ(ambisim::obs::current_profiler(), &outer);
    }
  }
  EXPECT_EQ(ambisim::obs::current_profiler(), nullptr);
}
#else
TEST(ProfilerTest, CurrentProfilerIsNullWhenCompiledOut) {
  Profiler prof;
  ProfilerBinding bind(&prof);
  EXPECT_EQ(ambisim::obs::current_profiler(), nullptr);
}
#endif

}  // namespace
