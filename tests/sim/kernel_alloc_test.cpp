// Verifies the zero-steady-state-allocation contract of the event kernel:
// once the slab and heap arrays are warm, scheduling, cancelling, and firing
// events must not touch the global allocator.
//
// The hook replaces global operator new/delete in THIS translation unit's
// final link (tests are one binary per file, so the replacement is binary
// wide but only this test consults the counter).  The counters are atomics
// so the hook stays benign under sanitizers and threaded gtest internals.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "ambisim/sim/simulator.hpp"

namespace {
std::atomic<std::uint64_t> g_news{0};
}  // namespace

void* operator new(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& t) noexcept {
  return ::operator new(size, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

using ambisim::sim::EventHandle;
using ambisim::sim::Simulator;
namespace u = ambisim::units;

std::uint64_t allocation_count() {
  return g_news.load(std::memory_order_relaxed);
}

// A self-rescheduling functor: 24 bytes of captures, well inside the
// 48-byte SBO budget, so each reschedule re-uses the freed slab slot.
struct Tick {
  Simulator* s;
  int* ticks;
  double dt;
  void operator()() const {
    ++*ticks;
    s->schedule_in(u::Time(dt), *this);
  }
};

TEST(KernelAlloc, SteadyStateFireLoopDoesNotAllocate) {
  Simulator s;
  int ticks = 0;
  s.schedule_in(u::Time(0.001), Tick{&s, &ticks, 0.001});

  // Warm-up: grows the slab/heap to steady state and faults in whatever
  // lazily-initialised library state the first events touch.
  s.run_until(u::Time(1.0));
  ASSERT_GT(ticks, 500);

  const int warm = ticks;
  const std::uint64_t before = allocation_count();
  s.run_until(u::Time(25.0));
  const std::uint64_t after = allocation_count();

  EXPECT_GT(ticks, warm + 20000);
  EXPECT_EQ(after - before, 0u)
      << "the fire/reschedule loop hit the global allocator "
      << (after - before) << " time(s)";
}

TEST(KernelAlloc, ScheduleCancelDrainMixDoesNotAllocateOnceWarm) {
  Simulator s;
  int fired = 0;
  std::vector<EventHandle> handles;
  const int kBatch = 256;
  handles.reserve(kBatch);

  auto one_round = [&](double base) {
    handles.clear();
    for (int i = 0; i < kBatch; ++i)
      handles.push_back(
          s.schedule_at(u::Time(base + i * 1e-4), [&fired] { ++fired; }));
    for (int i = 0; i < kBatch; i += 2) handles[i].cancel();
    s.run_until(u::Time(base + 1.0));
  };

  one_round(1.0);  // warm-up: slab + heap grow to hold kBatch events
  ASSERT_EQ(fired, kBatch / 2);

  const std::uint64_t before = allocation_count();
  for (int round = 1; round <= 8; ++round)
    one_round(1.0 + 2.0 * round);
  const std::uint64_t after = allocation_count();

  EXPECT_EQ(fired, (1 + 8) * kBatch / 2);
  EXPECT_EQ(after - before, 0u)
      << "schedule/cancel/drain rounds allocated " << (after - before)
      << " time(s) after warm-up";
}

TEST(KernelAlloc, PoolGrowthAllocatesOnlyWhileGrowing) {
  Simulator s;
  int fired = 0;
  const int n = 512;
  for (int i = 0; i < n; ++i)
    s.schedule_at(u::Time(1.0 + i * 1e-3), [&fired] { ++fired; });
  // Everything is resident; draining the queue is allocation-free even
  // though the pool just grew several times.
  const std::uint64_t before = allocation_count();
  s.run();
  const std::uint64_t after = allocation_count();
  EXPECT_EQ(fired, n);
  EXPECT_EQ(after - before, 0u);
}

}  // namespace
