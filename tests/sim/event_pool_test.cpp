// Edge cases of the slab-pooled kernel's generation-counted handles, pool
// growth, dropped-event accounting, and a randomized differential stress
// test against the preserved pre-pool reference kernel.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "../support/reference_kernel.hpp"
#include "ambisim/sim/random.hpp"
#include "ambisim/sim/simulator.hpp"

using ambisim::sim::EventHandle;
using ambisim::sim::Rng;
using ambisim::sim::Simulator;
using ambisim::sim::reference::ReferenceSimulator;
using namespace ambisim::units::literals;
namespace u = ambisim::units;

namespace {

TEST(EventPool, CancelFromInsideOwnCallbackIsANoOp) {
  Simulator s;
  int fired = 0;
  EventHandle self;
  self = s.schedule_at(1.0_s, [&] {
    ++fired;
    EXPECT_FALSE(self.pending());  // firing already consumed the slot
    self.cancel();                 // stale generation: must do nothing
  });
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.executed_events(), 1u);
  EXPECT_EQ(s.dropped_events(), 0u);
}

TEST(EventPool, StaleHandleCannotCancelASlotReusedByALaterEvent) {
  Simulator s;
  int first = 0;
  int second = 0;
  EventHandle h1 = s.schedule_at(1.0_s, [&] { ++first; });
  s.run();
  EXPECT_EQ(first, 1);
  // The freed slot is recycled (LIFO free list) for the next event; the
  // stale handle carries the old generation and must not touch it.
  s.schedule_at(2.0_s, [&] { ++second; });
  h1.cancel();
  EXPECT_FALSE(h1.pending());
  s.run();
  EXPECT_EQ(second, 1);
  EXPECT_EQ(s.executed_events(), 2u);
}

TEST(EventPool, HandleOutlivesTheSimulator) {
  EventHandle h;
  {
    Simulator s;
    h = s.schedule_at(5.0_s, [] {});
    EXPECT_TRUE(h.pending());
  }
  // The simulator is gone; the handle keeps the (drained) pool alive and
  // must stay inert rather than touch freed state.
  EXPECT_FALSE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  EventHandle copy = h;
  EXPECT_FALSE(copy.pending());
}

TEST(EventPool, DestroyingTheSimulatorReleasesPendingCaptures) {
  auto token = std::make_shared<int>(3);
  std::weak_ptr<int> alive = token;
  EventHandle h;
  {
    Simulator s;
    h = s.schedule_at(1.0_s, [token] { (void)*token; });
    token.reset();
    EXPECT_FALSE(alive.expired());
  }
  // ~Simulator drains the pool even though `h` still pins the slab.
  EXPECT_TRUE(alive.expired());
}

TEST(EventPool, GrowsPastInitialCapacityAndFiresEverything) {
  Simulator s;
  const std::size_t initial = s.event_pool_capacity();
  const int n = 5000;
  ASSERT_GT(static_cast<std::size_t>(n), initial);
  int fired = 0;
  double last = -1.0;
  bool ordered = true;
  for (int i = 0; i < n; ++i) {
    const double t = (i * 7919) % n;  // scrambled but collision-rich times
    s.schedule_at(u::Time(t), [&, t] {
      if (t < last) ordered = false;
      last = t;
      ++fired;
    });
  }
  EXPECT_GE(s.event_pool_capacity(), static_cast<std::size_t>(n));
  s.run();
  EXPECT_EQ(fired, n);
  EXPECT_TRUE(ordered);
  // The slab never shrinks; a second wave reuses it without growth.
  const std::size_t grown = s.event_pool_capacity();
  for (int i = 0; i < n; ++i)
    s.schedule_in(u::Time(1.0 + i * 1e-3), [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 2 * n);
  EXPECT_EQ(s.event_pool_capacity(), grown);
}

TEST(EventPool, DroppedEventsCountsCancellationsDrainedByStep) {
  Simulator s;
  int fired = 0;
  auto h1 = s.schedule_at(1.0_s, [&] { ++fired; });
  auto h2 = s.schedule_at(2.0_s, [&] { ++fired; });
  s.schedule_at(3.0_s, [&] { ++fired; });
  h1.cancel();
  h2.cancel();
  EXPECT_EQ(s.pending_events(), 3u);  // lazy deletion keeps slots queued
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.executed_events(), 1u);
  EXPECT_EQ(s.dropped_events(), 2u);
}

TEST(EventPool, RunUntilHeadDrainCountsDroppedNotExecuted) {
  Simulator s;
  int fired = 0;
  auto h = s.schedule_at(1.0_s, [&] { ++fired; });
  s.schedule_at(10.0_s, [&] { ++fired; });
  h.cancel();
  s.run_until(5.0_s);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(s.executed_events(), 0u);
  EXPECT_EQ(s.dropped_events(), 1u);
  EXPECT_DOUBLE_EQ(s.now().value(), 5.0);
  EXPECT_EQ(s.pending_events(), 1u);
}

TEST(EventPool, RunUntilAdvancesClockWhenQueueEmptiesEarly) {
  Simulator s;
  int fired = 0;
  s.schedule_at(1.0_s, [&] { ++fired; });
  s.run_until(10.0_s);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(s.now().value(), 10.0);
  // Entirely empty queue: the clock still advances to the deadline.
  s.run_until(20.0_s);
  EXPECT_DOUBLE_EQ(s.now().value(), 20.0);
}

TEST(EventPool, StopDuringRunUntilHaltsWithoutAdvancingToDeadline) {
  Simulator s;
  int fired = 0;
  s.schedule_at(1.0_s, [&] {
    ++fired;
    s.stop();
  });
  s.schedule_at(2.0_s, [&] { ++fired; });
  s.run_until(10.0_s);
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.stopped());
  // Documented stopped_ interaction: the clock stays at the stop point.
  EXPECT_DOUBLE_EQ(s.now().value(), 1.0);
  EXPECT_EQ(s.pending_events(), 1u);
  // A later run_until clears the stop flag and finishes the job.
  s.run_until(10.0_s);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(s.now().value(), 10.0);
}

// Replays one randomized workload — collision-rich times, follow-up events
// scheduled from inside callbacks, a random cancellation wave, and a
// run_until segment before the final run() — on any kernel with the
// Simulator API, returning the exact firing order.
template <typename Sim>
std::vector<int> differential_trace(unsigned seed) {
  Sim s;
  Rng rng(seed);
  std::vector<int> order;
  const int n = 2000;
  order.reserve(2 * n);
  std::vector<decltype(s.schedule_at(u::Time(0.0), [] {}))> handles;
  handles.reserve(n);
  for (int i = 0; i < n; ++i) {
    // Quantized times force heavy (time, seq) tie-breaking.
    const double t = rng.uniform_int(0, 200) * 0.5;
    const bool spawn_child = rng.bernoulli(0.3);
    handles.push_back(s.schedule_at(u::Time(t), [&s, &order, i, t,
                                               spawn_child] {
      order.push_back(i);
      if (spawn_child) {
        s.schedule_in(u::Time(0.25), [&order, i] {
          order.push_back(100000 + i);
        });
      }
      (void)t;
    }));
  }
  for (auto& h : handles) {
    if (rng.bernoulli(0.25)) h.cancel();
  }
  s.run_until(u::Time(40.0));
  s.run();
  return order;
}

TEST(EventPool, RandomizedFiringOrderMatchesReferenceKernel) {
  for (unsigned seed : {1u, 7u, 42u, 1234u}) {
    const std::vector<int> pooled = differential_trace<Simulator>(seed);
    const std::vector<int> reference =
        differential_trace<ReferenceSimulator>(seed);
    ASSERT_FALSE(pooled.empty());
    ASSERT_EQ(pooled, reference) << "divergence at seed " << seed;
  }
}

}  // namespace
