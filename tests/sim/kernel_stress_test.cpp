// Stress and ordering guarantees of the discrete-event kernel at scale.
#include <gtest/gtest.h>

#include <vector>

#include "ambisim/sim/random.hpp"
#include "ambisim/sim/simulator.hpp"

using ambisim::sim::Rng;
using ambisim::sim::Simulator;
namespace u = ambisim::units;

TEST(KernelStress, HundredThousandRandomEventsExecuteInOrder) {
  Simulator s;
  Rng rng(99);
  const int n = 100'000;
  double last_seen = -1.0;
  bool ordered = true;
  for (int i = 0; i < n; ++i) {
    const double t = rng.uniform(0.0, 1000.0);
    s.schedule_at(u::Time(t), [&, t] {
      if (t < last_seen) ordered = false;
      last_seen = t;
    });
  }
  s.run();
  EXPECT_TRUE(ordered);
  EXPECT_EQ(s.executed_events(), static_cast<std::uint64_t>(n));
}

TEST(KernelStress, CascadingEventsTerminate) {
  // Each event schedules two more until a depth limit: ~2^14 events.
  Simulator s;
  std::uint64_t fired = 0;
  std::function<void(int)> spawn = [&](int depth) {
    ++fired;
    if (depth <= 0) return;
    s.schedule_in(u::Time(0.001), [&, depth] { spawn(depth - 1); });
    s.schedule_in(u::Time(0.002), [&, depth] { spawn(depth - 1); });
  };
  s.schedule_at(u::Time(0.0), [&] { spawn(13); });
  s.run();
  EXPECT_EQ(fired, (1ull << 14) - 1);
}

TEST(KernelStress, MassCancellationLeavesSurvivors) {
  Simulator s;
  Rng rng(7);
  int fired = 0;
  std::vector<ambisim::sim::EventHandle> handles;
  for (int i = 0; i < 10'000; ++i) {
    handles.push_back(
        s.schedule_at(u::Time(1.0 + i * 1e-4), [&] { ++fired; }));
  }
  int cancelled = 0;
  for (auto& h : handles) {
    if (rng.bernoulli(0.5)) {
      h.cancel();
      ++cancelled;
    }
  }
  s.run();
  EXPECT_EQ(fired, 10'000 - cancelled);
  EXPECT_GT(cancelled, 4'000);
  EXPECT_LT(cancelled, 6'000);
}

TEST(KernelStress, InterleavedRunUntilSegmentsCoverEverything) {
  Simulator s;
  int fired = 0;
  for (int i = 0; i < 1'000; ++i) {
    s.schedule_at(u::Time(i * 0.01), [&] { ++fired; });
  }
  for (double horizon = 1.0; horizon <= 10.0; horizon += 1.0) {
    s.run_until(u::Time(horizon));
  }
  EXPECT_EQ(fired, 1'000);
  EXPECT_DOUBLE_EQ(s.now().value(), 10.0);
}

TEST(KernelStress, SelfReschedulingProcessStopsAtHorizon) {
  Simulator s;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    s.schedule_in(u::Time(0.5), tick);
  };
  s.schedule_at(u::Time(0.0), tick);
  s.run_until(u::Time(100.0));
  EXPECT_EQ(ticks, 201);  // t = 0, 0.5, ..., 100.0
  EXPECT_GT(s.pending_events(), 0u);  // the next tick is still queued
}
