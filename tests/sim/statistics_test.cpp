#include "ambisim/sim/statistics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ambisim/sim/random.hpp"
#include "ambisim/sim/table.hpp"

using ambisim::sim::Accumulator;
using ambisim::sim::Rng;
using ambisim::sim::Samples;
using ambisim::sim::Table;

TEST(Accumulator, MeanAndVariance) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(Samples, PercentileInterpolates) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-12);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-12);
  EXPECT_NEAR(s.median(), 50.5, 1e-12);
  EXPECT_NEAR(s.percentile(25), 25.75, 1e-12);
}

TEST(Samples, SortedCacheInvalidatedByInterleavedAdds) {
  // percentile() caches the sorted view; adds between queries must
  // invalidate it, including adds of new extremes.
  Samples s;
  s.add(5.0);
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  s.add(0.0);  // new minimum after a cached query
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);  // (1+3)/2
  s.add(10.0);  // new maximum
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 10.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  // The insertion-order view is unaffected by the cached sort.
  EXPECT_EQ(s.values().front(), 5.0);
  EXPECT_EQ(s.values().back(), 10.0);
}

TEST(Samples, RepeatedQueriesStayConsistent) {
  Samples s;
  for (int i = 100; i >= 1; --i) s.add(i);
  for (int rep = 0; rep < 3; ++rep) {
    EXPECT_NEAR(s.median(), 50.5, 1e-12);
    EXPECT_NEAR(s.percentile(90), 90.1, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 100.0);
  }
}

TEST(Samples, ThrowsOnEmptyAndBadRange) {
  Samples s;
  EXPECT_THROW((void)s.percentile(50), std::logic_error);
  s.add(1.0);
  EXPECT_THROW((void)s.percentile(-1), std::invalid_argument);
  EXPECT_THROW((void)s.percentile(101), std::invalid_argument);
  EXPECT_DOUBLE_EQ(s.percentile(50), 1.0);
}

TEST(LinearFit, RecoversExactLine) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y;
  for (double v : x) y.push_back(3.0 + 2.0 * v);
  const auto fit = ambisim::sim::linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LinearFit, RejectsDegenerateInput) {
  EXPECT_THROW(ambisim::sim::linear_fit({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(ambisim::sim::linear_fit({1.0, 1.0}, {1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(ambisim::sim::linear_fit({1.0, 2.0}, {1.0}),
               std::invalid_argument);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
    const auto k = r.uniform_int(-5, 5);
    EXPECT_GE(k, -5);
    EXPECT_LE(k, 5);
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng r(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng r(13);
  const std::vector<double> w{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[r.weighted_index(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(Rng, WeightedIndexValidatesInput) {
  Rng r(1);
  EXPECT_THROW(r.weighted_index(std::vector<double>{}),
               std::invalid_argument);
  EXPECT_THROW(r.weighted_index(std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(r.weighted_index(std::vector<double>{1.0, -1.0}),
               std::invalid_argument);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.fork();
  // Child stream differs from parent continuation.
  EXPECT_NE(child.uniform(), a.uniform());
}

TEST(Table, NumberAndRowAccess) {
  Table t("demo", {"name", "x"});
  t.add_row({std::string("a"), 1.5});
  t.add_row({std::string("b"), 2.5});
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_DOUBLE_EQ(t.number(0, 1), 1.5);
  EXPECT_THROW((void)t.number(0, 0), std::logic_error);
  EXPECT_THROW(t.add_row({std::string("short")}), std::invalid_argument);
}

TEST(Table, PrintsHeaderAndRows) {
  Table t("demo", {"a", "b"});
  t.add_row({1.0, 2.0});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find('a'), std::string::npos);
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_EQ(csv.str(), "a,b\n1,2\n");
}
