// Rng distribution helpers, focused on the single-pass weighted_index.
#include "ambisim/sim/random.hpp"

#include <gtest/gtest.h>

#include <array>
#include <stdexcept>
#include <vector>

namespace {

using ambisim::sim::Rng;

TEST(WeightedIndexTest, RejectsBadWeightVectors) {
  Rng rng(1);
  EXPECT_THROW(rng.weighted_index({}), std::invalid_argument);
  const std::array<double, 3> negative{0.5, -0.1, 0.5};
  EXPECT_THROW(rng.weighted_index(negative), std::invalid_argument);
  const std::array<double, 3> zeros{0.0, 0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(zeros), std::invalid_argument);
}

TEST(WeightedIndexTest, SingleWeightAlwaysSelected) {
  Rng rng(2);
  const std::array<double, 1> one{3.5};
  for (int i = 0; i < 32; ++i) EXPECT_EQ(rng.weighted_index(one), 0u);
}

TEST(WeightedIndexTest, ZeroWeightEntriesAreNeverSelected) {
  Rng rng(3);
  const std::array<double, 4> weights{0.0, 2.0, 0.0, 1.0};
  for (int i = 0; i < 2000; ++i) {
    const std::size_t k = rng.weighted_index(weights);
    EXPECT_TRUE(k == 1 || k == 3) << k;
  }
}

TEST(WeightedIndexTest, FrequenciesTrackWeights) {
  Rng rng(4);
  const std::array<double, 3> weights{1.0, 2.0, 7.0};
  std::array<int, 3> hits{};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits[rng.weighted_index(weights)] += 1;
  EXPECT_NEAR(hits[0] / double(kDraws), 0.1, 0.01);
  EXPECT_NEAR(hits[1] / double(kDraws), 0.2, 0.015);
  EXPECT_NEAR(hits[2] / double(kDraws), 0.7, 0.015);
}

TEST(WeightedIndexTest, ConsumesExactlyOneEngineDraw) {
  // The fused single-pass implementation must still draw exactly one
  // variate, keeping downstream seeded draws aligned with the old code.
  Rng a(99);
  Rng b(99);
  const std::array<double, 4> weights{1.0, 2.0, 3.0, 4.0};
  (void)a.weighted_index(weights);
  (void)b.uniform();  // consume one draw by hand
  EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(WeightedIndexTest, UnnormalizedWeightsMatchNormalized) {
  // Same seed, scaled weights -> identical selection sequence.
  Rng a(5);
  Rng b(5);
  const std::array<double, 3> w1{0.1, 0.3, 0.6};
  const std::array<double, 3> w2{10.0, 30.0, 60.0};
  for (int i = 0; i < 500; ++i)
    ASSERT_EQ(a.weighted_index(w1), b.weighted_index(w2));
}

TEST(RngTest, ForkedStreamsDiverge) {
  Rng parent(11);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (parent.uniform() == child.uniform()) ++equal;
  EXPECT_LE(equal, 1);
}

}  // namespace
