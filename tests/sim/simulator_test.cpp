#include "ambisim/sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

using ambisim::sim::Simulator;
using ambisim::sim::Trace;
using namespace ambisim::units::literals;
namespace u = ambisim::units;

TEST(Simulator, ExecutesEventsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(3.0_s, [&] { order.push_back(3); });
  s.schedule_at(1.0_s, [&] { order.push_back(1); });
  s.schedule_at(2.0_s, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now().value(), 3.0);
  EXPECT_EQ(s.executed_events(), 3u);
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(1.0_s, [&] { order.push_back(1); });
  s.schedule_at(1.0_s, [&] { order.push_back(2); });
  s.schedule_at(1.0_s, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator s;
  double fired_at = -1.0;
  s.schedule_at(2.0_s, [&] {
    s.schedule_in(0.5_s, [&] { fired_at = s.now().value(); });
  });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 2.5);
}

TEST(Simulator, RunUntilAdvancesClockToDeadline) {
  Simulator s;
  int fired = 0;
  s.schedule_at(1.0_s, [&] { ++fired; });
  s.schedule_at(10.0_s, [&] { ++fired; });
  s.run_until(5.0_s);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(s.now().value(), 5.0);
  s.run_until(20.0_s);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  int fired = 0;
  auto h = s.schedule_at(1.0_s, [&] { ++fired; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, CancelledHeadDoesNotDragLaterEventsPastDeadline) {
  Simulator s;
  int fired = 0;
  auto h = s.schedule_at(1.0_s, [&] { ++fired; });
  s.schedule_at(10.0_s, [&] { ++fired; });
  h.cancel();
  s.run_until(5.0_s);  // the 10 s event must NOT run
  EXPECT_EQ(fired, 0);
  EXPECT_DOUBLE_EQ(s.now().value(), 5.0);
}

TEST(Simulator, StopHaltsRun) {
  Simulator s;
  int fired = 0;
  s.schedule_at(1.0_s, [&] {
    ++fired;
    s.stop();
  });
  s.schedule_at(2.0_s, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.stopped());
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator s;
  s.schedule_at(2.0_s, [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(1.0_s, [] {}), std::invalid_argument);
  EXPECT_THROW(s.schedule_in(u::Time(-1.0), [] {}), std::invalid_argument);
}

TEST(Simulator, EmptyCallbackThrows) {
  Simulator s;
  EXPECT_THROW(s.schedule_at(1.0_s, Simulator::Callback{}),
               std::invalid_argument);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator s;
  EXPECT_FALSE(s.step());
}

TEST(EventHandle, DefaultHandleIsInertAndNotPending) {
  ambisim::sim::EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // must be a no-op
  EXPECT_FALSE(h.pending());
}

TEST(EventHandle, CancelAfterFireIsANoOp) {
  Simulator s;
  int fired = 0;
  auto h = s.schedule_at(1.0_s, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(h.pending());
  h.cancel();  // already fired: nothing to undo
  EXPECT_FALSE(h.pending());
  EXPECT_EQ(s.executed_events(), 1u);
  // The kernel stays usable afterwards.
  s.schedule_at(2.0_s, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventHandle, DoubleCancelIsIdempotent) {
  Simulator s;
  int fired = 0;
  auto h = s.schedule_at(1.0_s, [&] { ++fired; });
  h.cancel();
  EXPECT_FALSE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  s.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(s.executed_events(), 0u);
}

TEST(EventHandle, PendingTracksRunUntilDeadlines) {
  Simulator s;
  auto h = s.schedule_at(10.0_s, [] {});
  EXPECT_TRUE(h.pending());
  s.run_until(5.0_s);  // deadline before the event: still pending
  EXPECT_TRUE(h.pending());
  EXPECT_DOUBLE_EQ(s.now().value(), 5.0);
  s.run_until(10.0_s);  // deadline reaches the event: it fires
  EXPECT_FALSE(h.pending());
  s.run_until(20.0_s);
  EXPECT_FALSE(h.pending());
}

TEST(EventHandle, CopiedHandlesShareCancellationState) {
  Simulator s;
  int fired = 0;
  auto h1 = s.schedule_at(1.0_s, [&] { ++fired; });
  auto h2 = h1;
  h2.cancel();
  EXPECT_FALSE(h1.pending());
  EXPECT_FALSE(h2.pending());
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(EventHandle, TieBreakStaysDeterministicUnderInterleavedCancel) {
  // Events at the same timestamp fire in insertion order even when earlier
  // same-time events are cancelled between insertions, and re-scheduling at
  // the tied time goes to the back of the tie.
  Simulator s;
  std::vector<int> order;
  auto ha = s.schedule_at(1.0_s, [&] { order.push_back(1); });
  auto hb = s.schedule_at(1.0_s, [&] { order.push_back(2); });
  s.schedule_at(1.0_s, [&] { order.push_back(3); });
  hb.cancel();
  s.schedule_at(1.0_s, [&] { order.push_back(4); });
  (void)ha;
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 4}));
  EXPECT_EQ(s.executed_events(), 3u);
}

TEST(EventHandle, CancelInsideATiedEventSuppressesLaterTiedEvent) {
  Simulator s;
  std::vector<int> order;
  ambisim::sim::EventHandle victim;
  s.schedule_at(1.0_s, [&] {
    order.push_back(1);
    victim.cancel();
  });
  victim = s.schedule_at(1.0_s, [&] { order.push_back(2); });
  s.schedule_at(1.0_s, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Trace, RecordsAndIntegrates) {
  Trace t("power");
  t.record(0.0_s, 2.0);
  t.record(1.0_s, 4.0);
  t.record(3.0_s, 0.0);
  // sample-and-hold: 2*1 + 4*2 = 10
  EXPECT_DOUBLE_EQ(t.integral(), 10.0);
  EXPECT_EQ(t.points().size(), 3u);
  EXPECT_DOUBLE_EQ(t.last(), 0.0);
  EXPECT_EQ(t.name(), "power");
}

TEST(Trace, EmptyTraceIntegratesToZero) {
  Trace t("x");
  EXPECT_TRUE(t.empty());
  EXPECT_DOUBLE_EQ(t.integral(), 0.0);
}
