// InplaceCallback: the SBO callable the event kernel stores in its slots.
#include "ambisim/sim/callback.hpp"

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <memory>
#include <utility>

using ambisim::sim::InplaceCallback;

namespace {

TEST(InplaceCallback, DefaultIsEmpty) {
  InplaceCallback cb;
  EXPECT_FALSE(static_cast<bool>(cb));
  EXPECT_FALSE(cb.inline_stored());
}

TEST(InplaceCallback, SmallLambdaStoresInlineAndInvokes) {
  int hits = 0;
  InplaceCallback cb([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(cb));
  EXPECT_TRUE(cb.inline_stored());
  cb();
  cb();
  EXPECT_EQ(hits, 2);
}

TEST(InplaceCallback, CaptureAtInlineBudgetStaysInline) {
  // 40 bytes of array + an 8-byte reference: exactly the inline budget.
  std::array<double, 5> payload{1, 2, 3, 4, 5};
  double sum = 0.0;
  InplaceCallback cb([payload, &sum]() mutable {
    for (double v : payload) sum += v;
  });
  static_assert(sizeof(payload) + sizeof(&sum) == InplaceCallback::kInlineSize);
  EXPECT_TRUE(cb.inline_stored());
  cb();
  EXPECT_DOUBLE_EQ(sum, 15.0);
}

TEST(InplaceCallback, OversizedCaptureFallsBackToHeapAndStillWorks) {
  std::array<double, 16> payload{};
  payload[0] = 1.0;
  payload[15] = 2.0;
  double sum = 0.0;
  InplaceCallback cb([payload, &sum] { sum = payload[0] + payload[15]; });
  ASSERT_TRUE(static_cast<bool>(cb));
  EXPECT_FALSE(cb.inline_stored());
  cb();
  EXPECT_DOUBLE_EQ(sum, 3.0);
}

TEST(InplaceCallback, MoveTransfersOwnershipAndEmptiesSource) {
  int hits = 0;
  InplaceCallback a([&hits] { ++hits; });
  InplaceCallback b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);

  InplaceCallback c;
  c = std::move(b);
  ASSERT_TRUE(static_cast<bool>(c));
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InplaceCallback, MoveAssignmentDestroysPreviousTarget) {
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> alive = token;
  InplaceCallback holder([token] { (void)*token; });
  token.reset();
  EXPECT_FALSE(alive.expired());
  holder = InplaceCallback([] {});
  EXPECT_TRUE(alive.expired());
}

TEST(InplaceCallback, ResetDestroysCapturesImmediately) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> alive = token;
  InplaceCallback cb([token] { (void)*token; });
  token.reset();
  EXPECT_FALSE(alive.expired());
  cb.reset();
  EXPECT_TRUE(alive.expired());
  EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(InplaceCallback, DestructorReleasesHeapFallbackCaptures) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> alive = token;
  {
    std::array<double, 12> pad{};
    InplaceCallback cb([token, pad] { (void)*token, (void)pad; });
    EXPECT_FALSE(cb.inline_stored());
    token.reset();
    EXPECT_FALSE(alive.expired());
  }
  EXPECT_TRUE(alive.expired());
}

TEST(InplaceCallback, WrappingAnEmptyStdFunctionStaysEmpty) {
  std::function<void()> none;
  InplaceCallback cb(none);
  EXPECT_FALSE(static_cast<bool>(cb));

  void (*fp)() = nullptr;
  InplaceCallback cb2(fp);
  EXPECT_FALSE(static_cast<bool>(cb2));
}

TEST(InplaceCallback, WrapsANonEmptyStdFunction) {
  int hits = 0;
  std::function<void()> fn = [&hits] { ++hits; };
  InplaceCallback cb(fn);  // copied in; std::function fits inline
  ASSERT_TRUE(static_cast<bool>(cb));
  EXPECT_TRUE(cb.inline_stored());
  cb();
  EXPECT_EQ(hits, 1);
}

}  // namespace
