#include "ambisim/sim/units.hpp"

#include <gtest/gtest.h>

namespace u = ambisim::units;
using namespace ambisim::units::literals;

TEST(Units, LiteralsProduceSiBaseValues) {
  EXPECT_DOUBLE_EQ((1.0_mW).value(), 1e-3);
  EXPECT_DOUBLE_EQ((1.0_uW).value(), 1e-6);
  EXPECT_DOUBLE_EQ((2.5_V).value(), 2.5);
  EXPECT_DOUBLE_EQ((1.0_pJ).value(), 1e-12);
  EXPECT_DOUBLE_EQ((1.0_kbps).value(), 1e3);
  EXPECT_DOUBLE_EQ((1_hours).value(), 3600.0);
  EXPECT_DOUBLE_EQ((1_days).value(), 86400.0);
  EXPECT_DOUBLE_EQ((1_mAh).value(), 3.6);
  EXPECT_DOUBLE_EQ((1_Wh).value(), 3600.0);
  EXPECT_DOUBLE_EQ((16_bytes).value(), 128.0);
}

TEST(Units, PowerTimesTimeIsEnergy) {
  const u::Energy e = 2.0_W * 3.0_s;
  EXPECT_DOUBLE_EQ(e.value(), 6.0);
}

TEST(Units, EnergyDividedByBitsIsEnergyPerBit) {
  const u::EnergyPerBit epb = 8.0_J / 4.0_bit;
  EXPECT_DOUBLE_EQ(epb.value(), 2.0);
}

TEST(Units, PowerDividedByBitRateIsEnergyPerBit) {
  const u::EnergyPerBit epb = 1.0_mW / 1.0_kbps;
  EXPECT_DOUBLE_EQ(epb.value(), 1e-6);
}

TEST(Units, VoltageTimesCurrentIsPower) {
  const u::Power p = 3.0_V * u::Current(0.5);
  EXPECT_DOUBLE_EQ(p.value(), 1.5);
}

TEST(Units, ChargeTimesVoltageIsEnergy) {
  const u::Energy e = 225_mAh * 3.0_V;
  EXPECT_NEAR(e.value(), 0.225 * 3600.0 * 3.0, 1e-9);
}

TEST(Units, CapacitanceTimesVoltageSquaredIsEnergy) {
  const u::Energy e = 1.0_pF * 2.0_V * 2.0_V;
  EXPECT_DOUBLE_EQ(e.value(), 4e-12);
}

TEST(Units, ComparisonAndArithmetic) {
  EXPECT_LT(1.0_uW, 1.0_mW);
  EXPECT_GT(2.0_J, 1.0_J);
  EXPECT_EQ((1.0_W + 1.0_W).value(), 2.0);
  EXPECT_EQ((3.0_W - 1.0_W).value(), 2.0);
  EXPECT_EQ((-1.0_W).value(), -1.0);
  EXPECT_EQ(u::abs(-1.0_W).value(), 1.0);
  EXPECT_EQ(u::min(1.0_W, 2.0_W).value(), 1.0);
  EXPECT_EQ(u::max(1.0_W, 2.0_W).value(), 2.0);
}

TEST(Units, CompoundAssignment) {
  u::Power p = 1.0_W;
  p += 1.0_W;
  p -= 0.5_W;
  p *= 2.0;
  p /= 4.0;
  EXPECT_DOUBLE_EQ(p.value(), 0.75);
}

TEST(Units, RatioIsDimensionless) {
  EXPECT_DOUBLE_EQ(u::ratio(2.0_mW, 1.0_mW), 2.0);
}

TEST(Units, SqrtHalvesExponents) {
  const u::Area a = 4.0_m2;
  const u::Length l = u::sqrt(a);
  EXPECT_DOUBLE_EQ(l.value(), 2.0);
}

TEST(Units, ScalarDivisionInverts) {
  const u::Frequency f = 1.0 / 0.5_s;
  EXPECT_DOUBLE_EQ(f.value(), 2.0);
}

TEST(Units, SiFormatPicksEngineeringPrefix) {
  EXPECT_EQ(u::si_format(1.3e-6, "W"), "1.3 uW");
  EXPECT_EQ(u::si_format(2.5e3, "bit/s"), "2.5 kbit/s");
  EXPECT_EQ(u::si_format(0.0, "J"), "0 J");
  EXPECT_EQ(u::si_format(1.0, "s"), "1 s");
  EXPECT_EQ(u::si_format(-4.2e-3, "A"), "-4.2 mA");
}

TEST(Units, ToStringHelpers) {
  EXPECT_EQ(u::to_string(1.0_mW), "1 mW");
  EXPECT_EQ(u::to_string(2.0_Mbps), "2 Mbit/s");
}

TEST(Units, PowerDensityLiteralsAgree) {
  // 1 mW/cm^2 = 10 W/m^2; 1 uW/cm^2 = 0.01 W/m^2.
  EXPECT_DOUBLE_EQ((1.0_mW_cm2).value(), 10.0);
  EXPECT_DOUBLE_EQ((1000.0_uW_cm2).value(), (1.0_mW_cm2).value());
  EXPECT_DOUBLE_EQ((1_W_m2).value(), 1.0);
  EXPECT_DOUBLE_EQ(u::power_density_from_uw_cm2(50.0).value(), 0.5);
  EXPECT_DOUBLE_EQ(u::as_uw_cm2(u::PowerDensity(0.5)), 50.0);
}

TEST(Units, IncidentPowerIsDensityTimesArea) {
  // 100 uW/cm^2 over 50 cm^2 captures 5 mW — dimensions close to Power.
  const u::Power p = u::incident_power(100.0_uW_cm2, u::Area(50e-4));
  EXPECT_NEAR(p.value(), 5e-3, 1e-15);
  EXPECT_DOUBLE_EQ(u::as_microwatts(p), 5000.0);
  EXPECT_DOUBLE_EQ(u::microwatts(2.5).value(), 2.5e-6);
}

TEST(Units, PowerDensityToString) {
  EXPECT_EQ(u::to_string(u::PowerDensity(0.5)), "500 mW/m^2");
}
