#include "ambisim/sim/ascii_plot.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

using ambisim::sim::AsciiScatter;

TEST(AsciiScatter, RendersTitleAxesAndPoints) {
  AsciiScatter p("demo", 40, 12);
  p.add(1e3, 1e-3, 'a');
  p.add(1e6, 1.0, 'b');
  p.set_labels("rate", "power");
  std::ostringstream os;
  p.render(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find('a'), std::string::npos);
  EXPECT_NE(s.find('b'), std::string::npos);
  EXPECT_NE(s.find("x: rate"), std::string::npos);
  EXPECT_NE(s.find("1e+03"), std::string::npos);  // x decade tick
  EXPECT_NE(s.find("1e-03"), std::string::npos);  // y decade tick
  EXPECT_EQ(p.size(), 2u);
}

TEST(AsciiScatter, PointOrderingOnTheGrid) {
  // The higher-power point must render on an earlier (upper) line.
  AsciiScatter p("order", 40, 12);
  p.add(1e3, 1e-6, 'L');
  p.add(1e3, 1e2, 'H');
  std::ostringstream os;
  p.render(os);
  const std::string s = os.str();
  EXPECT_LT(s.find('H'), s.find('L'));
}

TEST(AsciiScatter, LogAxisRejectsNonPositive) {
  AsciiScatter p("bad", 40, 12);
  EXPECT_THROW(p.add(0.0, 1.0, 'x'), std::invalid_argument);
  EXPECT_THROW(p.add(1.0, -2.0, 'x'), std::invalid_argument);
  EXPECT_THROW(p.add(1.0, std::nan(""), 'x'), std::invalid_argument);
}

TEST(AsciiScatter, LinearAxesAcceptAnyFinite) {
  AsciiScatter p("linear", 40, 12, false, false);
  EXPECT_NO_THROW(p.add(-5.0, 0.0, 'x'));
  EXPECT_NO_THROW(p.add(5.0, -3.0, 'y'));
  std::ostringstream os;
  p.render(os);
  EXPECT_NE(os.str().find('x'), std::string::npos);
}

TEST(AsciiScatter, EmptyPlotRendersPlaceholder) {
  AsciiScatter p("empty", 40, 12);
  std::ostringstream os;
  p.render(os);
  EXPECT_NE(os.str().find("(no points)"), std::string::npos);
}

TEST(AsciiScatter, TooSmallRejected) {
  EXPECT_THROW(AsciiScatter("tiny", 4, 2), std::invalid_argument);
}

TEST(AsciiScatter, SinglePointDoesNotDegenerate) {
  AsciiScatter p("single", 40, 12);
  p.add(42.0, 42.0, '*');
  std::ostringstream os;
  EXPECT_NO_THROW(p.render(os));
  EXPECT_NE(os.str().find('*'), std::string::npos);
}
