#include "ambisim/core/scenario.hpp"

#include <gtest/gtest.h>

using namespace ambisim;
using core::AmiScenarioConfig;
using core::run_ami_scenario;
namespace u = ambisim::units;

namespace {
AmiScenarioConfig short_config() {
  AmiScenarioConfig cfg;
  cfg.duration = u::Time(3600.0);  // one hour
  cfg.events_per_hour = 30.0;
  cfg.seed = 11;
  return cfg;
}
}  // namespace

TEST(AmiScenario, EventCountTracksRate) {
  auto cfg = short_config();
  cfg.duration = u::Time(86400.0);
  cfg.events_per_hour = 10.0;
  const auto r = run_ami_scenario(cfg);
  // Poisson with mean 240; allow +-40%.
  EXPECT_GT(r.events, 144);
  EXPECT_LT(r.events, 336);
  EXPECT_EQ(r.responses_rendered, r.events);
  EXPECT_EQ(r.end_to_end_latency.count(),
            static_cast<std::size_t>(r.events));
}

TEST(AmiScenario, WattNodeDominatesEnergy) {
  const auto r = run_ami_scenario(short_config());
  EXPECT_GT(r.class_energy.share("Watt-node"), 0.9);
  EXPECT_GT(r.class_energy.of("milliWatt-node").value(), 0.0);
  EXPECT_GT(r.class_energy.of("microWatt-node").value(), 0.0);
}

TEST(AmiScenario, MicroWattNodesStayNeutral) {
  const auto r = run_ami_scenario(short_config());
  EXPECT_TRUE(r.sensors_energy_neutral);
  EXPECT_LT(r.sensor_average_power, 1e-3);  // stays in the uW class
  EXPECT_GT(r.sensor_average_power, 0.0);
}

TEST(AmiScenario, PersonalBatteryLastsDays) {
  const auto r = run_ami_scenario(short_config());
  EXPECT_GT(r.personal_battery_days, 1.0);
}

TEST(AmiScenario, LatencyDominatedByDutyCycledFirstHop) {
  const auto r = run_ami_scenario(short_config());
  ASSERT_GT(r.end_to_end_latency.count(), 0u);
  // Latency below wake interval + processing slack.
  EXPECT_LT(r.end_to_end_latency.max(), 2.0);
  EXPECT_GT(r.end_to_end_latency.min(), 0.0);
  // The spread comes from the random preamble wait: roughly one wake
  // interval wide.
  EXPECT_GT(r.end_to_end_latency.max() - r.end_to_end_latency.min(), 0.3);
}

TEST(AmiScenario, DeterministicForSeed) {
  const auto a = run_ami_scenario(short_config());
  const auto b = run_ami_scenario(short_config());
  EXPECT_EQ(a.events, b.events);
  EXPECT_DOUBLE_EQ(a.system_power.value(), b.system_power.value());
}

TEST(AmiScenario, ZeroEventRateStillAccountsStandby) {
  auto cfg = short_config();
  cfg.events_per_hour = 0.0;
  const auto r = run_ami_scenario(cfg);
  EXPECT_EQ(r.events, 0);
  EXPECT_GT(r.system_power.value(), 0.0);
  EXPECT_GT(r.class_energy.of("Watt-node").value(), 0.0);
}

TEST(AmiScenario, MoreSensorsMoreMicroWattEnergy) {
  auto small = short_config();
  small.sensor_count = 4;
  auto large = short_config();
  large.sensor_count = 32;
  const auto rs = run_ami_scenario(small);
  const auto rl = run_ami_scenario(large);
  EXPECT_GT(rl.class_energy.of("microWatt-node").value(),
            rs.class_energy.of("microWatt-node").value());
}

TEST(AmiScenario, SystemPowerIsTotalOverDuration) {
  const auto cfg = short_config();
  const auto r = run_ami_scenario(cfg);
  EXPECT_NEAR(r.system_power.value(),
              r.class_energy.total().value() / cfg.duration.value(), 1e-9);
}

TEST(AmiScenario, Validation) {
  auto cfg = short_config();
  cfg.sensor_count = 0;
  EXPECT_THROW(run_ami_scenario(cfg), std::invalid_argument);
  cfg = short_config();
  cfg.duration = u::Time(0.0);
  EXPECT_THROW(run_ami_scenario(cfg), std::invalid_argument);
  cfg = short_config();
  cfg.events_per_hour = -1.0;
  EXPECT_THROW(run_ami_scenario(cfg), std::invalid_argument);
}

TEST(AmiScenario, StageBreakdownCoversPipeline) {
  const auto r = run_ami_scenario(short_config());
  EXPECT_GT(r.stage_energy.of("standby").value(), 0.0);
  EXPECT_GT(r.stage_energy.of("sense-report").value(), 0.0);
  EXPECT_GT(r.stage_energy.of("context-processing").value(), 0.0);
  EXPECT_GT(r.stage_energy.of("recognition").value(), 0.0);
  EXPECT_GT(r.stage_energy.of("response-stream").value(), 0.0);
}
