#include "ambisim/core/power_info.hpp"

#include <gtest/gtest.h>

#include <sstream>

using namespace ambisim;
using core::DeviceClass;
using core::PowerInfoGraph;
using core::PowerInfoPoint;
using core::TechnologyKind;
namespace u = ambisim::units;
using namespace ambisim::units::literals;

TEST(PowerInfoPoint, DerivedQuantities) {
  const PowerInfoPoint p{"x", TechnologyKind::Compute, "130nm", 10_mW,
                         1.0_Mbps};
  EXPECT_EQ(p.device_class(), DeviceClass::MilliWatt);
  EXPECT_NEAR(p.energy_per_bit().value(), 1e-8, 1e-15);
}

TEST(PowerInfoPoint, EnergyPerBitNeedsRate) {
  const PowerInfoPoint p{"x", TechnologyKind::Compute, "130nm", 10_mW,
                         u::BitRate(0.0)};
  EXPECT_THROW(p.energy_per_bit(), std::logic_error);
}

TEST(PowerInfoGraph, AddValidatesCoordinates) {
  PowerInfoGraph g;
  EXPECT_THROW(g.add({"bad", TechnologyKind::Compute, "x", u::Power(0.0),
                      1.0_Mbps}),
               std::invalid_argument);
  EXPECT_THROW(g.add({"bad", TechnologyKind::Compute, "x", 1_mW,
                      u::BitRate(-1.0)}),
               std::invalid_argument);
}

TEST(PowerInfoGraph, StandardCatalogueIsComprehensive) {
  const auto g = PowerInfoGraph::standard_catalogue();
  EXPECT_GE(g.size(), 25u);
  // All four technology kinds present.
  EXPECT_FALSE(g.of_kind(TechnologyKind::Compute).empty());
  EXPECT_FALSE(g.of_kind(TechnologyKind::Communication).empty());
  EXPECT_FALSE(g.of_kind(TechnologyKind::Interface).empty());
  EXPECT_FALSE(g.of_kind(TechnologyKind::Storage).empty());
  // Points span more than three decades of power.
  double pmin = 1e18, pmax = 0.0;
  for (const auto& p : g.points()) {
    pmin = std::min(pmin, p.power.value());
    pmax = std::max(pmax, p.power.value());
  }
  EXPECT_GT(pmax / pmin, 1e3);
}

TEST(PowerInfoGraph, CatalogueClassPartitionIsComplete) {
  const auto g = PowerInfoGraph::standard_catalogue();
  const auto uw = g.in_class(DeviceClass::MicroWatt);
  const auto mw = g.in_class(DeviceClass::MilliWatt);
  const auto w = g.in_class(DeviceClass::Watt);
  EXPECT_EQ(uw.size() + mw.size() + w.size(), g.size());
}

TEST(PowerInfoGraph, ClusterStats) {
  PowerInfoGraph g;
  g.add({"a", TechnologyKind::Compute, "t", 10_uW, 1.0_kbps});
  g.add({"b", TechnologyKind::Compute, "t", 100_uW, 10.0_kbps});
  g.add({"c", TechnologyKind::Compute, "t", 10_W, 1.0_Mbps});
  const auto s = g.cluster(DeviceClass::MicroWatt);
  EXPECT_EQ(s.count, 2);
  EXPECT_NEAR(s.mean_log10_power, (std::log10(1e-5) + std::log10(1e-4)) / 2,
              1e-12);
  EXPECT_NEAR(s.min_epb.value(), 1e-8, 1e-15);
  EXPECT_NEAR(s.max_epb.value(), 1e-8, 1e-15);
  const auto empty = g.cluster(DeviceClass::MilliWatt);
  EXPECT_EQ(empty.count, 0);
}

TEST(PowerInfoGraph, LogLogFitOnSyntheticLine) {
  // Points on an exact iso-energy-per-bit diagonal: slope 1.
  PowerInfoGraph g;
  for (double r : {1e3, 1e4, 1e5, 1e6}) {
    g.add({"p", TechnologyKind::Compute, "t", u::Power(1e-9 * r),
           u::BitRate(r)});
  }
  const auto fit = g.loglog_fit();
  EXPECT_NEAR(fit.slope, 1.0, 1e-9);
  EXPECT_NEAR(fit.intercept, -9.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(PowerInfoGraph, FitNeedsTwoPoints) {
  PowerInfoGraph g;
  g.add({"only", TechnologyKind::Compute, "t", 1_mW, 1.0_kbps});
  EXPECT_THROW(g.loglog_fit(), std::logic_error);
}

TEST(PowerInfoGraph, CataloguePowerCorrelatesWithRate) {
  const auto fit = PowerInfoGraph::standard_catalogue().loglog_fit();
  EXPECT_GT(fit.slope, 0.0);  // more information costs more power
}

TEST(PowerInfoGraph, TableHasOneRowPerPoint) {
  const auto g = PowerInfoGraph::standard_catalogue();
  const auto t = g.to_table("test");
  EXPECT_EQ(t.row_count(), g.size());
  EXPECT_EQ(t.columns().size(), 7u);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("risc32@130nm"), std::string::npos);
}

TEST(PowerInfoGraph, TechnologyScalingMovesPointsDownRight) {
  // The same core in a newer process: more rate, less power.
  const auto g = PowerInfoGraph::standard_catalogue();
  const PowerInfoPoint* risc130 = nullptr;
  const PowerInfoPoint* risc90 = nullptr;
  for (const auto& p : g.points()) {
    if (p.name == "risc32@130nm") risc130 = &p;
    if (p.name == "risc32@90nm") risc90 = &p;
  }
  ASSERT_NE(risc130, nullptr);
  ASSERT_NE(risc90, nullptr);
  EXPECT_GT(risc90->info_rate, risc130->info_rate);
  EXPECT_LT(risc90->power, risc130->power);
  EXPECT_LT(risc90->energy_per_bit(), risc130->energy_per_bit());
}

TEST(PowerInfoGraph, KindNames) {
  EXPECT_EQ(to_string(TechnologyKind::Compute), "compute");
  EXPECT_EQ(to_string(TechnologyKind::Communication), "communication");
  EXPECT_EQ(to_string(TechnologyKind::Interface), "interface");
  EXPECT_EQ(to_string(TechnologyKind::Storage), "storage");
}
