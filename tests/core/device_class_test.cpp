#include "ambisim/core/device_class.hpp"

#include <gtest/gtest.h>

using namespace ambisim::core;
namespace u = ambisim::units;
using namespace ambisim::units::literals;

TEST(DeviceClass, BoundariesExactlyAtDecades) {
  EXPECT_EQ(classify_power(10_uW), DeviceClass::MicroWatt);
  EXPECT_EQ(classify_power(999_uW), DeviceClass::MicroWatt);
  EXPECT_EQ(classify_power(1_mW), DeviceClass::MilliWatt);
  EXPECT_EQ(classify_power(999_mW), DeviceClass::MilliWatt);
  EXPECT_EQ(classify_power(1_W), DeviceClass::Watt);
  EXPECT_EQ(classify_power(100_W), DeviceClass::Watt);
  EXPECT_EQ(classify_power(u::Power(0.0)), DeviceClass::MicroWatt);
  EXPECT_THROW(classify_power(u::Power(-1.0)), std::invalid_argument);
}

TEST(DeviceClass, Names) {
  EXPECT_EQ(to_string(DeviceClass::MicroWatt), "microWatt-node");
  EXPECT_EQ(to_string(DeviceClass::MilliWatt), "milliWatt-node");
  EXPECT_EQ(to_string(DeviceClass::Watt), "Watt-node");
}

TEST(DeviceClass, ProfilesMatchTheKeynoteTaxonomy) {
  const auto uw = class_profile(DeviceClass::MicroWatt);
  EXPECT_EQ(uw.label, "autonomous");
  EXPECT_NE(uw.energy_source.find("scavenging"), std::string::npos);
  // Decade-scale autonomy for the autonomous node.
  EXPECT_GT(uw.expected_autonomy.value(), 86400.0 * 365.0);

  const auto mw = class_profile(DeviceClass::MilliWatt);
  EXPECT_EQ(mw.label, "personal");
  EXPECT_NE(mw.energy_source.find("battery"), std::string::npos);

  const auto w = class_profile(DeviceClass::Watt);
  EXPECT_EQ(w.label, "static");
  EXPECT_EQ(w.energy_source, "mains");
}

TEST(DeviceClass, ProfileBandsTileThePlane) {
  // Each class's band ends where the next begins.
  const auto uw = class_profile(DeviceClass::MicroWatt);
  const auto mw = class_profile(DeviceClass::MilliWatt);
  const auto w = class_profile(DeviceClass::Watt);
  EXPECT_DOUBLE_EQ(uw.budget_high.value(), mw.budget_low.value());
  EXPECT_DOUBLE_EQ(mw.budget_high.value(), w.budget_low.value());
  // And the boundaries agree with the classifier.
  EXPECT_EQ(classify_power(uw.budget_high), DeviceClass::MilliWatt);
  EXPECT_EQ(classify_power(mw.budget_high), DeviceClass::Watt);
}
