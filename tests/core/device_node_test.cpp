#include "ambisim/core/device_node.hpp"

#include <gtest/gtest.h>

using namespace ambisim;
using core::DeviceClass;
using core::DeviceNode;
namespace u = ambisim::units;
using namespace ambisim::units::literals;

namespace {
const tech::TechnologyNode& n130() {
  return tech::TechnologyLibrary::standard().node("130nm");
}
}  // namespace

TEST(DeviceNode, AveragePowerSumsBreakdown) {
  const auto d = core::personal_audio_node(n130());
  u::Power sum{0.0};
  for (const auto& [name, p] : d.power_breakdown()) sum += p;
  EXPECT_NEAR(sum.value(), d.average_power().value(), 1e-12);
  EXPECT_GE(d.power_breakdown().size(), 3u);
}

TEST(DeviceNode, CaseStudyDevicesLandInTheirClasses) {
  const auto sensor = core::autonomous_sensor_node(n130());
  const auto personal = core::personal_audio_node(n130());
  const auto server = core::home_media_server(n130());
  EXPECT_EQ(sensor.device_class(), DeviceClass::MicroWatt);
  EXPECT_EQ(personal.device_class(), DeviceClass::MilliWatt);
  EXPECT_EQ(server.device_class(), DeviceClass::Watt);
  // Three orders of magnitude between adjacent classes, roughly.
  EXPECT_GT(personal.average_power().value(),
            50.0 * sensor.average_power().value());
  EXPECT_GT(server.average_power().value(),
            50.0 * personal.average_power().value());
}

TEST(DeviceNode, SupplyKindsDriveAutonomy) {
  const auto sensor = core::autonomous_sensor_node(n130());
  const auto personal = core::personal_audio_node(n130());
  const auto server = core::home_media_server(n130());
  // Harvested & neutral: unlimited.
  EXPECT_TRUE(sensor.energy_neutral());
  EXPECT_GE(sensor.autonomy().value(), 1e17);
  // Battery: finite, days-scale.
  EXPECT_FALSE(personal.energy_neutral());
  EXPECT_GT(personal.autonomy().value(), 3600.0);
  EXPECT_LT(personal.autonomy().value(), 86400.0 * 60);
  // Mains: unlimited.
  EXPECT_TRUE(server.energy_neutral());
  EXPECT_GE(server.autonomy().value(), 1e17);
}

TEST(DeviceNode, ToPointRoundTrips) {
  const auto d = core::personal_audio_node(n130());
  const auto p = d.to_point();
  EXPECT_EQ(p.name, d.name());
  EXPECT_DOUBLE_EQ(p.power.value(), d.average_power().value());
  EXPECT_DOUBLE_EQ(p.info_rate.value(), d.information_rate().value());
  EXPECT_EQ(p.process, "130nm");
}

TEST(DeviceNode, BuilderValidation) {
  DeviceNode d("test");
  auto cpu = arch::ProcessorModel::at_max_clock(arch::risc_core(), n130(),
                                                1.3_V);
  EXPECT_THROW(d.set_compute({cpu, 1.5, 1.0}), std::invalid_argument);
  EXPECT_THROW(d.set_compute({cpu, 0.5, -0.1}), std::invalid_argument);

  radio::RadioModel r(radio::ulp_radio());
  EXPECT_THROW(d.set_radio({r, 0.5, 0.5, 0.5}), std::invalid_argument);
  EXPECT_THROW(d.set_radio({r, -0.1, 0.0, 0.0}), std::invalid_argument);

  EXPECT_THROW(d.add_interface({"x", 1_mW, 1.5, 0_uW, 1.0_kbps}),
               std::invalid_argument);

  core::SupplyConfig s;
  s.kind = core::SupplyKind::Battery;  // missing battery spec
  EXPECT_THROW(d.set_supply(s), std::invalid_argument);
  s.kind = core::SupplyKind::Harvested;  // missing harvester
  EXPECT_THROW(d.set_supply(s), std::invalid_argument);
}

TEST(DeviceNode, EmptyDeviceHandlesNoInformation) {
  DeviceNode d("empty");
  EXPECT_THROW(d.information_rate(), std::logic_error);
  EXPECT_DOUBLE_EQ(d.average_power().value(), 0.0);
}

TEST(DeviceNode, ComputeOnlyDeviceFallsBackToOpStream) {
  DeviceNode d("compute-only");
  auto cpu = arch::ProcessorModel::at_max_clock(arch::dsp_core(), n130(),
                                                1.3_V);
  const double tput = cpu.throughput().value();
  d.set_compute({std::move(cpu), 0.5, 1.0});
  EXPECT_NEAR(d.information_rate().value(), tput * 0.5 * 32.0, 1e-3);
}

TEST(DeviceNode, DutyCyclingScalesPower) {
  auto cpu = arch::ProcessorModel::at_max_clock(arch::risc_core(), n130(),
                                                1.3_V);
  DeviceNode full("full");
  full.set_compute({cpu, 1.0, 1.0});
  DeviceNode half("half");
  half.set_compute({cpu, 1.0, 0.5});
  EXPECT_NEAR(half.average_power().value(),
              0.5 * full.average_power().value(), 1e-12);
}

TEST(DeviceNode, HarvestedDeficitGivesFiniteAutonomy) {
  DeviceNode d("hungry-harvester");
  auto cpu = arch::ProcessorModel::at_max_clock(arch::risc_core(), n130(),
                                                1.3_V);
  d.set_compute({std::move(cpu), 1.0, 1.0});  // ~hundreds of mW
  core::SupplyConfig s;
  s.kind = core::SupplyKind::Harvested;
  s.harvester = std::make_shared<energy::SolarHarvester>(2_cm2, 0.15, true);
  s.battery = energy::Battery::coin_cell_cr2032();
  d.set_supply(std::move(s));
  EXPECT_FALSE(d.energy_neutral());
  EXPECT_LT(d.autonomy().value(), 86400.0);  // drains within a day
  EXPECT_GT(d.autonomy().value(), 0.0);
}

TEST(DeviceNode, SupplyKindNames) {
  EXPECT_EQ(to_string(core::SupplyKind::Mains), "mains");
  EXPECT_EQ(to_string(core::SupplyKind::Battery), "battery");
  EXPECT_EQ(to_string(core::SupplyKind::Harvested), "harvested");
}

// Property: the case-study devices keep their classes across the process
// generations a 2003 designer would target.
class DeviceAcrossNodes : public ::testing::TestWithParam<const char*> {};

TEST_P(DeviceAcrossNodes, ClassesStable) {
  const auto& n = tech::TechnologyLibrary::standard().node(GetParam());
  EXPECT_EQ(core::autonomous_sensor_node(n).device_class(),
            DeviceClass::MicroWatt);
  EXPECT_EQ(core::personal_audio_node(n).device_class(),
            DeviceClass::MilliWatt);
  EXPECT_EQ(core::home_media_server(n).device_class(), DeviceClass::Watt);
}

INSTANTIATE_TEST_SUITE_P(ProcessNodes, DeviceAcrossNodes,
                         ::testing::Values("180nm", "130nm", "90nm"));
