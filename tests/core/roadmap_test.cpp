#include "ambisim/core/roadmap.hpp"

#include <gtest/gtest.h>

using namespace ambisim;
using core::DeviceClass;
using core::feasibility_roadmap;
using core::function_feasibility;
namespace u = ambisim::units;
using namespace ambisim::units::literals;

namespace {
const tech::TechnologyNode& node(const char* n) {
  return tech::TechnologyLibrary::standard().node(n);
}
}  // namespace

TEST(Roadmap, SensingFitsMicroWattEverywhere) {
  const auto wl = workload::sensing(u::Frequency(1.0));
  for (const auto& n : tech::TechnologyLibrary::standard().all()) {
    const auto v = function_feasibility(wl, DeviceClass::MicroWatt, n);
    EXPECT_TRUE(v.feasible) << n.name;
    EXPECT_LT(v.power.value(), 1e-3) << n.name;
  }
}

TEST(Roadmap, VideoNeverFitsMicroWatt) {
  // The SD stream (4 Mbps) alone exceeds the 100 kbps ULP radio.
  const auto wl = workload::video_decode_sd();
  for (const auto& n : tech::TechnologyLibrary::standard().all()) {
    const auto v = function_feasibility(wl, DeviceClass::MicroWatt, n);
    EXPECT_FALSE(v.feasible) << n.name;
    EXPECT_FALSE(v.radio_ok) << n.name;
  }
}

TEST(Roadmap, VideoSdFitsWattNode) {
  const auto wl = workload::video_decode_sd();
  const auto v = function_feasibility(wl, DeviceClass::Watt, node("130nm"));
  EXPECT_TRUE(v.compute_ok);
  EXPECT_TRUE(v.radio_ok);
  EXPECT_TRUE(v.feasible);
}

TEST(Roadmap, AudioEntersMilliWattClass) {
  const auto wl = workload::audio_playback(128_kbps);
  const auto v =
      function_feasibility(wl, DeviceClass::MilliWatt, node("130nm"));
  EXPECT_TRUE(v.feasible);
  EXPECT_LT(v.power.value(), 1.0);
  EXPECT_GT(v.compute_utilization, 0.0);
}

TEST(Roadmap, FeasibilityImprovesWithScaling) {
  // Once a function is feasible in a class, it stays feasible on newer
  // nodes (monotone roadmap).
  const auto wl = workload::speech_frontend();
  bool seen_feasible = false;
  for (const auto& n : tech::TechnologyLibrary::standard().all()) {
    const bool f =
        function_feasibility(wl, DeviceClass::MilliWatt, n).feasible;
    if (seen_feasible) EXPECT_TRUE(f) << n.name;
    seen_feasible = seen_feasible || f;
  }
  EXPECT_TRUE(seen_feasible);
}

TEST(Roadmap, RoadmapTableIsComplete) {
  const std::vector<workload::StreamingWorkload> fns{
      workload::sensing(), workload::audio_playback(),
      workload::video_decode_sd()};
  const auto entries = feasibility_roadmap(fns);
  EXPECT_EQ(entries.size(), fns.size() * 3);
  for (const auto& e : entries) {
    if (e.first_year) {
      EXPECT_FALSE(e.first_node.empty());
      EXPECT_GE(*e.first_year, 1995);
      EXPECT_LE(*e.first_year, 2007);
    } else {
      EXPECT_TRUE(e.first_node.empty());
    }
  }
}

TEST(Roadmap, EveryFunctionEventuallyFitsTheWattNode) {
  const std::vector<workload::StreamingWorkload> fns{
      workload::sensing(), workload::speech_frontend(),
      workload::audio_playback(), workload::video_decode_sd(),
      workload::video_decode_hd()};
  for (const auto& e : feasibility_roadmap(fns)) {
    if (e.cls == DeviceClass::Watt) {
      EXPECT_TRUE(e.first_year.has_value()) << e.function;
    }
  }
}
